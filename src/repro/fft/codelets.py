"""Small-point FFT codelets, vectorized over leading batch axes.

These play the role of the paper's register-resident compute kernels: the
16-point codelet is exactly what each GPU thread executes in steps 1-4 of
the five-step algorithm (Section 3.1: "we perform four 16-point FFTs to
compute a single 256-point FFT"), and the 2/4/8-point codelets are the
butterflies inside the shared-memory 256-point kernel of step 5.

All codelets transform the *last* axis and are pure NumPy expressions, so a
batch of any shape is processed in one vectorized sweep — the multirow-FFT
structure the paper inherits from vector machines maps onto NumPy's batch
axes here.

Every codelet takes optional keyword-only ``out``/``ws`` arguments.  With
neither, the original out-of-place expressions run unchanged (the *seed
path*).  With either, the butterfly is evaluated through explicit ufunc
``out=`` writes into caller- or :class:`~repro.core.workspace.Workspace`-
provided buffers: no stack/concatenate temporaries, results written
straight into ``out`` (which may be a strided view — this is how the
five-step kernels fuse the transform into a transpose write).  The two
paths perform the same scalar arithmetic and produce equal values.
``out`` must not alias ``x``; complex input is required on the pooled path
(real input falls back to the seed expressions).

Flop counts (used by the performance model) follow the standard
``5 n log2 n`` convention; the explicit butterfly structure below achieves
it up to the usual trivial-twiddle savings, which we do not discount (the
paper's GFLOPS convention does not either).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fft.twiddle import DEFAULT_CACHE

__all__ = [
    "CODELET_SIZES",
    "codelet_fft",
    "fft2",
    "fft4",
    "fft8",
    "fft16",
]

_SQRT1_2 = np.sqrt(0.5)


def _mul_j(x: np.ndarray) -> np.ndarray:
    """Multiply by ``-i`` without a complex multiply (two moves + negate).

    On the GPU this is free register renaming; here it avoids promoting
    complex64 operands through a python complex scalar.
    """
    return x.imag - 1j * x.real  # (a+bi) * -i = b - ai


# -- pooled-path plumbing ---------------------------------------------------


def _scratch(ws, shape, dtype) -> np.ndarray:
    """A batch-shaped temporary (no transform axis)."""
    if ws is None:
        return np.empty(shape, dtype)
    return ws.acquire(shape, dtype)


def _scratch_t(ws, shape, dtype) -> np.ndarray:
    """A temporary whose *last* (transform) axis is slowest in memory.

    Codelets write one transform-index slice at a time; with the transform
    axis outermost each ``t[..., k]`` slice is one contiguous block — the
    host analogue of the paper's pattern-A/B coalesced stores.
    """
    phys = (shape[-1], *shape[:-1])
    buf = np.empty(phys, dtype) if ws is None else ws.acquire(phys, dtype)
    return np.moveaxis(buf, 0, -1)


def _free(ws, *arrs: np.ndarray) -> None:
    if ws is not None:
        for a in arrs:
            ws.release(a)


def _finish(legacy: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    """Route a seed-path result through ``out`` when one was given."""
    if out is None:
        return legacy
    np.copyto(out, legacy)
    return out


def _combine_into(even, odd, w, out, ws) -> None:
    """``out[:h] = E + wO; out[h:] = E - wO`` with a single pooled temp."""
    h = even.shape[-1]
    t = _scratch_t(ws, even.shape, even.dtype)
    np.multiply(odd, w, out=t)
    np.add(even, t, out=out[..., :h])
    np.subtract(even, t, out=out[..., h:])
    _free(ws, t)


# -- seed-path helpers ------------------------------------------------------


def fft2(x: np.ndarray, *, out: np.ndarray | None = None, ws=None) -> np.ndarray:
    """2-point DFT along the last axis."""
    if x.shape[-1] != 2:
        raise ValueError(f"fft2 expects last axis 2, got {x.shape[-1]}")
    a, b = x[..., 0], x[..., 1]
    if (out is None and ws is None) or not np.iscomplexobj(x):
        return _finish(np.stack([a + b, a - b], axis=-1), out)
    if out is None:
        out = _scratch_t(ws, x.shape, x.dtype)
    np.add(a, b, out=out[..., 0])
    np.subtract(a, b, out=out[..., 1])
    return out


def fft4(x: np.ndarray, *, out: np.ndarray | None = None, ws=None) -> np.ndarray:
    """4-point DFT along the last axis (radix-2 DIT, straight-line)."""
    if x.shape[-1] != 4:
        raise ValueError(f"fft4 expects last axis 4, got {x.shape[-1]}")
    x0, x1, x2, x3 = (x[..., i] for i in range(4))
    if (out is None and ws is None) or not np.iscomplexobj(x):
        t0 = x0 + x2
        t1 = x0 - x2
        t2 = x1 + x3
        t3 = _mul_j(x1 - x3)  # -i * (x1 - x3)
        return _finish(np.stack([t0 + t2, t1 + t3, t0 - t2, t1 - t3], axis=-1), out)
    dt = x.dtype
    if out is None:
        out = _scratch_t(ws, x.shape, dt)
    # Two scratches, eight contiguous passes.  The -i rotation is a
    # scalar complex multiply: (a+bi)(-i) = b - ai up to the sign of
    # zeros, which +/-/* can never turn into a nonzero difference —
    # values stay ``==``-identical to the seed path's _mul_j.
    t = _scratch(ws, x0.shape, dt)
    u = _scratch(ws, x0.shape, dt)
    np.add(x0, x2, out=t)
    np.add(x1, x3, out=u)
    np.add(t, u, out=out[..., 0])
    np.subtract(t, u, out=out[..., 2])
    np.subtract(x0, x2, out=t)
    np.subtract(x1, x3, out=u)
    np.multiply(u, dt.type(-1j), out=u)
    np.add(t, u, out=out[..., 1])
    np.subtract(t, u, out=out[..., 3])
    _free(ws, t, u)
    return out


def _dit_combine(even: np.ndarray, odd: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Combine half-size DFTs: ``X[k] = E[k] + w[k] O[k]`` (and the mirror).

    ``even``/``odd`` have last axis ``n/2``; ``w`` is ``W_n^k`` for
    ``k < n/2``.  Returns the natural-order n-point DFT.
    """
    t = odd * w
    return np.concatenate([even + t, even - t], axis=-1)


def _half_twiddles(n: int, dtype: np.dtype) -> np.ndarray:
    # Cached per (n, dtype) — this used to recompute exp() on every call.
    return DEFAULT_CACHE.half(n, dtype)


def fft8(x: np.ndarray, *, out: np.ndarray | None = None, ws=None) -> np.ndarray:
    """8-point DFT along the last axis (DIT from two 4-point codelets)."""
    if x.shape[-1] != 8:
        raise ValueError(f"fft8 expects last axis 8, got {x.shape[-1]}")
    # W8^k, k=0..3: 1, (1-i)/sqrt2, -i, -(1+i)/sqrt2 — constants, like the
    # register-held twiddles of the paper's step 1-4 kernels.
    w = DEFAULT_CACHE.codelet8(
        x.dtype if np.iscomplexobj(x) else np.complex128
    )
    if (out is None and ws is None) or not np.iscomplexobj(x):
        even = fft4(x[..., 0::2])
        odd = fft4(x[..., 1::2])
        return _finish(_dit_combine(even, odd, w), out)
    dt = x.dtype
    if out is None:
        out = _scratch_t(ws, x.shape, dt)
    even = fft4(x[..., 0::2], out=_scratch_t(ws, x.shape[:-1] + (4,), dt), ws=ws)
    odd = fft4(x[..., 1::2], out=_scratch_t(ws, x.shape[:-1] + (4,), dt), ws=ws)
    _combine_into(even, odd, w, out, ws)
    _free(ws, even, odd)
    return out


def fft16(x: np.ndarray, *, out: np.ndarray | None = None, ws=None) -> np.ndarray:
    """16-point DFT along the last axis (DIT from two 8-point codelets).

    This is the workhorse of the paper's steps 1-4: one of these per thread,
    51-52 registers in the CUDA original.
    """
    if x.shape[-1] != 16:
        raise ValueError(f"fft16 expects last axis 16, got {x.shape[-1]}")
    dtype = x.dtype if np.iscomplexobj(x) else np.dtype(np.complex128)
    w = _half_twiddles(16, dtype)
    if (out is None and ws is None) or not np.iscomplexobj(x):
        even = fft8(x[..., 0::2])
        odd = fft8(x[..., 1::2])
        return _finish(_dit_combine(even, odd, w), out)
    if out is None:
        out = _scratch_t(ws, x.shape, dtype)
    even = fft8(x[..., 0::2], out=_scratch_t(ws, x.shape[:-1] + (8,), dtype), ws=ws)
    odd = fft8(x[..., 1::2], out=_scratch_t(ws, x.shape[:-1] + (8,), dtype), ws=ws)
    _combine_into(even, odd, w, out, ws)
    _free(ws, even, odd)
    return out


_CODELETS: dict[int, Callable[..., np.ndarray]] = {
    2: fft2,
    4: fft4,
    8: fft8,
    16: fft16,
}

#: Sizes with a straight-line codelet.
CODELET_SIZES: tuple[int, ...] = tuple(sorted(_CODELETS))


def codelet_fft(
    x: np.ndarray,
    inverse: bool = False,
    *,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Dispatch to the codelet for ``x.shape[-1]``.

    ``inverse=True`` computes the un-normalized inverse via conjugation
    (``IDFT(x) = conj(DFT(conj(x)))``), which reuses the forward butterfly
    structure exactly as a real implementation would.
    """
    n = x.shape[-1]
    try:
        f = _CODELETS[n]
    except KeyError:
        raise ValueError(
            f"no codelet for size {n}; available: {CODELET_SIZES}"
        ) from None
    if out is None and ws is None:
        if inverse:
            return np.conj(f(np.conj(x)))
        return f(x)
    if not inverse:
        return f(x, out=out, ws=ws)
    if not np.iscomplexobj(x):
        return _finish(np.conj(f(np.conj(x))), out)
    xc = _scratch_t(ws, x.shape, x.dtype)
    np.conjugate(x, out=xc)
    out = f(xc, out=out, ws=ws)
    _free(ws, xc)
    np.conjugate(out, out=out)
    return out
