"""Small-point FFT codelets, vectorized over leading batch axes.

These play the role of the paper's register-resident compute kernels: the
16-point codelet is exactly what each GPU thread executes in steps 1-4 of
the five-step algorithm (Section 3.1: "we perform four 16-point FFTs to
compute a single 256-point FFT"), and the 2/4/8-point codelets are the
butterflies inside the shared-memory 256-point kernel of step 5.

All codelets transform the *last* axis and are pure NumPy expressions, so a
batch of any shape is processed in one vectorized sweep — the multirow-FFT
structure the paper inherits from vector machines maps onto NumPy's batch
axes here.

Flop counts (used by the performance model) follow the standard
``5 n log2 n`` convention; the explicit butterfly structure below achieves
it up to the usual trivial-twiddle savings, which we do not discount (the
paper's GFLOPS convention does not either).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "CODELET_SIZES",
    "codelet_fft",
    "fft2",
    "fft4",
    "fft8",
    "fft16",
]

_SQRT1_2 = np.sqrt(0.5)


def _mul_j(x: np.ndarray) -> np.ndarray:
    """Multiply by ``-i`` without a complex multiply (two moves + negate).

    On the GPU this is free register renaming; here it avoids promoting
    complex64 operands through a python complex scalar.
    """
    return x.imag - 1j * x.real  # (a+bi) * -i = b - ai


def fft2(x: np.ndarray) -> np.ndarray:
    """2-point DFT along the last axis."""
    if x.shape[-1] != 2:
        raise ValueError(f"fft2 expects last axis 2, got {x.shape[-1]}")
    a, b = x[..., 0], x[..., 1]
    return np.stack([a + b, a - b], axis=-1)


def fft4(x: np.ndarray) -> np.ndarray:
    """4-point DFT along the last axis (radix-2 DIT, straight-line)."""
    if x.shape[-1] != 4:
        raise ValueError(f"fft4 expects last axis 4, got {x.shape[-1]}")
    x0, x1, x2, x3 = (x[..., i] for i in range(4))
    t0 = x0 + x2
    t1 = x0 - x2
    t2 = x1 + x3
    t3 = _mul_j(x1 - x3)  # -i * (x1 - x3)
    return np.stack([t0 + t2, t1 + t3, t0 - t2, t1 - t3], axis=-1)


def _dit_combine(even: np.ndarray, odd: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Combine half-size DFTs: ``X[k] = E[k] + w[k] O[k]`` (and the mirror).

    ``even``/``odd`` have last axis ``n/2``; ``w`` is ``W_n^k`` for
    ``k < n/2``.  Returns the natural-order n-point DFT.
    """
    t = odd * w
    return np.concatenate([even + t, even - t], axis=-1)


def _half_twiddles(n: int, dtype: np.dtype) -> np.ndarray:
    k = np.arange(n // 2, dtype=np.float64)
    return np.exp(-2j * np.pi * k / n).astype(dtype, copy=False)


def fft8(x: np.ndarray) -> np.ndarray:
    """8-point DFT along the last axis (DIT from two 4-point codelets)."""
    if x.shape[-1] != 8:
        raise ValueError(f"fft8 expects last axis 8, got {x.shape[-1]}")
    even = fft4(x[..., 0::2])
    odd = fft4(x[..., 1::2])
    # W8^k, k=0..3: 1, (1-i)/sqrt2, -i, -(1+i)/sqrt2 — constants, like the
    # register-held twiddles of the paper's step 1-4 kernels.
    w = np.array(
        [1.0, _SQRT1_2 * (1 - 1j), -1j, _SQRT1_2 * (-1 - 1j)],
        dtype=x.dtype if np.iscomplexobj(x) else np.complex128,
    )
    return _dit_combine(even, odd, w)


def fft16(x: np.ndarray) -> np.ndarray:
    """16-point DFT along the last axis (DIT from two 8-point codelets).

    This is the workhorse of the paper's steps 1-4: one of these per thread,
    51-52 registers in the CUDA original.
    """
    if x.shape[-1] != 16:
        raise ValueError(f"fft16 expects last axis 16, got {x.shape[-1]}")
    even = fft8(x[..., 0::2])
    odd = fft8(x[..., 1::2])
    dtype = x.dtype if np.iscomplexobj(x) else np.dtype(np.complex128)
    w = _half_twiddles(16, dtype)
    return _dit_combine(even, odd, w)


_CODELETS: dict[int, Callable[[np.ndarray], np.ndarray]] = {
    2: fft2,
    4: fft4,
    8: fft8,
    16: fft16,
}

#: Sizes with a straight-line codelet.
CODELET_SIZES: tuple[int, ...] = tuple(sorted(_CODELETS))


def codelet_fft(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Dispatch to the codelet for ``x.shape[-1]``.

    ``inverse=True`` computes the un-normalized inverse via conjugation
    (``IDFT(x) = conj(DFT(conj(x)))``), which reuses the forward butterfly
    structure exactly as a real implementation would.
    """
    n = x.shape[-1]
    try:
        f = _CODELETS[n]
    except KeyError:
        raise ValueError(
            f"no codelet for size {n}; available: {CODELET_SIZES}"
        ) from None
    if inverse:
        return np.conj(f(np.conj(x)))
    return f(x)
