"""Stockham autosort FFT (iterative, batched, no bit-reversal pass).

The paper contrasts its transpose ordering with the "Stockham auto-sort
algorithm" (Section 3.1); we implement the classic algorithm both as a
general-purpose host transform and as the model for what CUFFT-style
libraries execute.

Formulation
-----------
Radix-2 decimation-in-frequency with the self-sorting data layout: the
working array is viewed as ``(m, l)`` where ``m`` sub-transforms of length
``l`` remain.  One step maps ``(m, l) -> (2m, l/2)``::

    u = A[:, :l/2] + A[:, l/2:]
    v = (A[:, :l/2] - A[:, l/2:]) * W_l^j      (j = 0..l/2-1)
    A' = concat(u, v, axis=0)

After ``log2 n`` steps the flattened array is the natural-order transform —
no separate reordering pass, which is why vector machines (and GPUs)
favored it.
"""

from __future__ import annotations

import numpy as np

from repro.util.indexing import ilog2

__all__ = ["stockham_fft", "stockham_radix4"]


def stockham_fft(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Un-normalized FFT along the last axis of ``x`` (power-of-two only).

    Vectorized over all leading axes.  ``inverse=True`` conjugates the
    twiddles (still un-normalized; divide by ``n`` for ``numpy.fft.ifft``
    semantics).
    """
    x = np.asarray(x)
    if not np.iscomplexobj(x):
        x = x.astype(np.complex128)
    n = x.shape[-1]
    stages = ilog2(n)  # validates power of two
    if n == 1:
        return x.copy()

    batch = x.shape[:-1]
    sign = 2j if inverse else -2j
    # Working view: (..., m, l)
    a = x.reshape(batch + (1, n))
    l = n
    for _ in range(stages):
        half = l // 2
        j = np.arange(half, dtype=np.float64)
        # W_l^j = exp(-2*pi*i*j/l) forward (sign carries the 2i factor).
        w = np.exp(sign * np.pi * j / l).astype(a.dtype, copy=False)
        lo = a[..., :half]
        hi = a[..., half:]
        u = lo + hi
        v = (lo - hi) * w
        a = np.concatenate([u, v], axis=-2)
        l = half
    return a.reshape(batch + (n,))


def stockham_radix4(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Un-normalized radix-4 Stockham FFT along the last axis.

    ``n`` must be a power of 4.  This is the exact stage structure of the
    paper's step-5 shared-memory kernel (four radix-4 stages with three
    data exchanges for 256 points); the warp-level kernel in
    :mod:`repro.core.warp_kernels` mirrors it thread by thread, and this
    host version is its oracle.

    One stage maps the working view ``(m, l) -> (4m, l/4)``::

        u_q[row, j] = W_l^{j q} * sum_p A[row, j + p*l/4] * w4^{p q}
        A'[q*m + row, j] = u_q[row, j]
    """
    x = np.asarray(x)
    if not np.iscomplexobj(x):
        x = x.astype(np.complex128)
    n = x.shape[-1]
    stages = ilog2(n)
    if stages % 2 != 0:
        raise ValueError(f"radix-4 Stockham needs a power of 4, got {n}")
    if n == 1:
        return x.copy()

    batch = x.shape[:-1]
    sign = 2j if inverse else -2j
    # w4[p, q] = exp(-2*pi*i*p*q/4) forward (sign carries the 2i factor).
    w4 = np.exp(sign * np.pi * np.outer(np.arange(4), np.arange(4)) / 4.0)
    w4 = w4.astype(x.dtype, copy=False)

    a = x.reshape(batch + (1, n))
    l = n
    while l > 1:
        quarter = l // 4
        j = np.arange(quarter, dtype=np.float64)
        # parts[p] = A[..., row, j + p*quarter]
        parts = [a[..., p * quarter:(p + 1) * quarter] for p in range(4)]
        outs = []
        for q in range(4):
            acc = parts[0] * w4[0, q]
            for p in range(1, 4):
                acc = acc + parts[p] * w4[p, q]
            tw = np.exp(sign * np.pi * j * q / l).astype(a.dtype, copy=False)
            outs.append(acc * tw)
        # A'[q*m + row, j]: stack the q-planes above the row axis.
        a = np.concatenate(outs, axis=-2)
        l = quarter
    return a.reshape(batch + (n,))
