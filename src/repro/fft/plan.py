"""Plan objects: precomputed decomposition + twiddles for repeated use.

FFTW popularized the plan-then-execute API; the paper's kernels are also
size-specialized ("the program itself must be tailored for each major
sizes", Section 4.6).  A plan fixes size, precision, engine and
normalization once, validates on construction, and then executes with no
per-call planning cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fft.cooley_tukey import fft_pow2
from repro.fft.normalization import NORMS, apply_norm
from repro.fft.stockham import stockham_fft
from repro.fft.multirow import multirow_fft
from repro.util.indexing import ilog2
from repro.util.validation import as_complex_array

__all__ = ["ENGINES", "Plan1D", "PlanND"]

ENGINES = ("four_step", "stockham")

_ENGINE_FUNCS = {
    "four_step": fft_pow2,
    "stockham": stockham_fft,
}


@dataclass(frozen=True)
class Plan1D:
    """A reusable 1-D transform of fixed size.

    Parameters
    ----------
    n:
        Transform length (power of two).
    precision:
        ``"single"`` or ``"double"``; input is cast on execute.
    engine:
        ``"four_step"`` (default) or ``"stockham"``.
    norm:
        One of :data:`repro.fft.normalization.NORMS`.
    """

    n: int
    precision: str = "double"
    engine: str = "four_step"
    norm: str = "backward"

    def __post_init__(self) -> None:
        ilog2(self.n)
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; expected {ENGINES}")
        if self.norm not in NORMS:
            raise ValueError(f"unknown norm {self.norm!r}; expected {NORMS}")
        if self.precision not in ("single", "double"):
            raise ValueError(f"unknown precision {self.precision!r}")

    def execute(self, x: np.ndarray, inverse: bool = False) -> np.ndarray:
        """Transform the last axis of ``x`` (batched over leading axes)."""
        x = as_complex_array(x, self.precision)
        if x.shape[-1] != self.n:
            raise ValueError(
                f"plan is for size {self.n}, input last axis is {x.shape[-1]}"
            )
        out = _ENGINE_FUNCS[self.engine](x, inverse)
        return apply_norm(out, self.n, self.norm, inverse)

    @property
    def flops(self) -> float:
        """Nominal flops per single transform (``5 n log2 n``)."""
        return 5.0 * self.n * ilog2(self.n)


@dataclass(frozen=True)
class PlanND:
    """A reusable N-D transform over all axes of a fixed shape.

    Applies 1-D multirow transforms axis by axis (the separability of the
    multi-dimensional DFT); the 3-D public API wraps this.
    """

    shape: tuple[int, ...]
    precision: str = "double"
    engine: str = "four_step"
    norm: str = "backward"
    _plans: tuple[Plan1D, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("shape must be non-empty")
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))
        plans = tuple(
            Plan1D(n, self.precision, self.engine, norm="backward")
            for n in self.shape
        )
        if self.norm not in NORMS:
            raise ValueError(f"unknown norm {self.norm!r}; expected {NORMS}")
        object.__setattr__(self, "_plans", plans)

    def execute(self, x: np.ndarray, inverse: bool = False) -> np.ndarray:
        """Transform all axes of ``x`` (must match the planned shape)."""
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, input is {x.shape}")
        engine = _ENGINE_FUNCS[self.engine]
        for axis in range(len(self.shape)):
            x = multirow_fft(x, axis=axis, inverse=inverse, transform=engine)
        total = 1
        for n in self.shape:
            total *= n
        return apply_norm(x, total, self.norm, inverse)

    @property
    def flops(self) -> float:
        """Nominal flops: ``5 * total * sum(log2 n_axis)``."""
        total = 1
        for n in self.shape:
            total *= n
        return 5.0 * total * sum(ilog2(n) for n in self.shape)
