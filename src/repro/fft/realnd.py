"""Real-input 3-D transforms with half-spectrum storage.

A real ``(nz, ny, nx)`` grid has a Hermitian spectrum; storing only
``kx <= nx/2`` halves memory and bandwidth — the standard optimization
for spectral solvers whose fields are real (velocity, density).  Built on
the complex engine: real 1-D transforms along X (via the packing trick in
:mod:`repro.fft.real`) then complex multirow transforms along Y and Z.
"""

from __future__ import annotations

import numpy as np

from repro.fft.multirow import multirow_fft
from repro.fft.real import irfft, rfft

__all__ = ["rfft3d", "irfft3d"]


def rfft3d(x: np.ndarray) -> np.ndarray:
    """Real-to-complex 3-D FFT; matches ``numpy.fft.rfftn``.

    Output shape ``(nz, ny, nx//2 + 1)``.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {x.shape}")
    if np.iscomplexobj(x):
        raise TypeError("rfft3d needs real input; use fft3d for complex")
    out = rfft(x.astype(np.float64, copy=False), axis=2)
    out = multirow_fft(out, axis=1)
    out = multirow_fft(out, axis=0)
    return out


def irfft3d(spec: np.ndarray) -> np.ndarray:
    """Complex-to-real inverse; matches ``numpy.fft.irfftn``.

    ``spec`` has shape ``(nz, ny, nx//2 + 1)``; returns ``(nz, ny, nx)``
    real with NumPy's backward normalization.
    """
    spec = np.asarray(spec, dtype=np.complex128)
    if spec.ndim != 3:
        raise ValueError(f"expected a 3-D array, got shape {spec.shape}")
    nz, ny = spec.shape[0], spec.shape[1]
    out = multirow_fft(spec, axis=0, inverse=True) / nz
    out = multirow_fft(out, axis=1, inverse=True) / ny
    return irfft(out, axis=2)
