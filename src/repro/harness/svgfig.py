"""Dependency-free SVG rendering of the paper's figures.

The ASCII charts serve the terminal; this module writes real grouped bar
charts (Figures 1-3 style) as standalone SVG files — hand-assembled XML,
no plotting library — so the reproduction can ship publication-style
artifacts: ``python -m repro.harness --svg outdir`` writes one file per
figure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

__all__ = ["grouped_bar_svg", "write_figure_svgs"]

#: Series fill colors (paper-style: dark, medium, light).
_COLORS = ("#2c5f8a", "#7fa8c9", "#c9d8e6", "#8a6d2c", "#c9b87f")


def grouped_bar_svg(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str,
    y_label: str = "GFLOPS",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render a grouped bar chart as an SVG document string."""
    if not groups or not series:
        raise ValueError("need groups and series")
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(f"series {name!r} length mismatch")
    if len(series) > len(_COLORS):
        raise ValueError(f"at most {len(_COLORS)} series supported")

    margin_l, margin_r, margin_t, margin_b = 60, 20, 50, 70
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    vmax = max(max(vals) for vals in series.values())
    if vmax <= 0:
        vmax = 1.0
    vmax *= 1.1  # headroom

    n_groups = len(groups)
    n_series = len(series)
    group_w = plot_w / n_groups
    bar_w = group_w * 0.8 / n_series

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
        f'font-family="sans-serif" font-size="15" font-weight="bold">'
        f"{escape(title)}</text>",
    ]

    # Y axis with 5 gridlines and labels.
    for i in range(6):
        frac = i / 5
        y = margin_t + plot_h * (1 - frac)
        value = vmax * frac
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - margin_r}" '
            f'y2="{y:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11">{value:.0f}</text>'
        )
    parts.append(
        f'<text x="16" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 16 {margin_t + plot_h / 2:.0f})">'
        f"{escape(y_label)}</text>"
    )

    # Bars and group labels.
    for gi, group in enumerate(groups):
        gx = margin_l + gi * group_w + group_w * 0.1
        for si, (name, vals) in enumerate(series.items()):
            v = vals[gi]
            h = plot_h * v / vmax
            x = gx + si * bar_w
            y = margin_t + plot_h - h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w * 0.9:.1f}" '
                f'height="{h:.1f}" fill="{_COLORS[si]}">'
                f"<title>{escape(name)}: {v:.1f}</title></rect>"
            )
            parts.append(
                f'<text x="{x + bar_w * 0.45:.1f}" y="{y - 3:.1f}" '
                f'text-anchor="middle" font-family="sans-serif" '
                f'font-size="9">{v:.0f}</text>'
            )
        parts.append(
            f'<text x="{gx + group_w * 0.4:.1f}" y="{margin_t + plot_h + 18}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="12">'
            f"{escape(group)}</text>"
        )

    # Legend.
    lx = margin_l
    ly = height - 24
    for si, name in enumerate(series):
        parts.append(
            f'<rect x="{lx}" y="{ly - 10}" width="12" height="12" '
            f'fill="{_COLORS[si]}"/>'
        )
        parts.append(
            f'<text x="{lx + 16}" y="{ly}" font-family="sans-serif" '
            f'font-size="11">{escape(name)}</text>'
        )
        lx += 16 + 7 * len(name) + 24

    parts.append("</svg>")
    return "\n".join(parts)


def write_figure_svgs(out_dir: str | Path) -> list[Path]:
    """Regenerate Figures 1-3 as SVG files in ``out_dir``."""
    from repro.harness.experiments import run_experiment

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for exp_id, n in (("fig1", 256), ("fig2", 64), ("fig3", 128)):
        result = run_experiment(exp_id)
        groups = list(result.rows)
        series = {
            "Bandwidth Intensive Kernel": [result.rows[g]["ours"] for g in groups],
            "Conventional (transposes)": [
                result.rows[g]["conventional"] for g in groups
            ],
            "CUFFT3D": [result.rows[g]["cufft"] for g in groups],
        }
        svg = grouped_bar_svg(
            groups, series, f"3-D FFT of size {n}^3 (model)",
        )
        path = out_dir / f"{exp_id}_{n}cubed.svg"
        path.write_text(svg)
        written.append(path)
    return written
