"""Calibration-sensitivity analysis: how brittle is the reproduction?

The DRAM model has a handful of calibrated constants.  A skeptical reader
should ask: do the paper-matching predictions depend delicately on those
values?  This module perturbs each constant and reports how the headline
outputs move.  Small output sensitivity to most constants (and honest,
explainable sensitivity to the bandwidth-defining ones) is the evidence
that the reproduction rests on mechanisms rather than curve fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import estimate_fft3d
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX

__all__ = ["SensitivityRow", "sensitivity_study", "TUNABLE_FIELDS"]

#: The calibrated DRAM fields and the perturbation applied to each.
TUNABLE_FIELDS = {
    "stream_utilization": 0.05,    # absolute +/-
    "t_rrd_beats": 0.2,            # relative +/-
    "t_rc_beats": 0.2,
    "row_bytes": 1.0,              # x2 / x0.5 (power-of-two field)
    "n_banks": 1.0,                # x2 / x0.5
    "reorder_window_total": 0.5,
}


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of perturbing one constant on the headline outputs."""

    field: str
    low_value: float
    high_value: float
    #: On-board 256^3 GFLOPS at (low, nominal, high).
    gflops: tuple[float, float, float]
    #: Single-stream anchor GB/s at (low, nominal, high).
    anchor_single: tuple[float, float, float]

    @property
    def gflops_swing(self) -> float:
        """Max relative deviation of the headline GFLOPS."""
        lo, nom, hi = self.gflops
        return max(abs(lo - nom), abs(hi - nom)) / nom


def _gflops_and_anchor(device: DeviceSpec) -> tuple[float, float]:
    ms = MemorySystem(device)
    est = estimate_fft3d(device, 256, memsystem=ms)
    return est.on_board_gflops, ms.sequential_bandwidth() / 1e9


def sensitivity_study(
    base: DeviceSpec = GEFORCE_8800_GTX,
    fields: dict[str, float] | None = None,
) -> list[SensitivityRow]:
    """Perturb each calibrated constant and measure the headline outputs."""
    fields = fields or TUNABLE_FIELDS
    nominal_gflops, nominal_anchor = _gflops_and_anchor(base)
    rows = []
    for field, spread in fields.items():
        nominal = getattr(base.dram, field)
        if field == "stream_utilization":
            lo_v, hi_v = nominal - spread, min(0.99, nominal + spread)
        elif field in ("row_bytes", "n_banks"):
            lo_v, hi_v = max(1, int(nominal // 2)), int(nominal * 2)
        elif field == "reorder_window_total":
            lo_v, hi_v = max(4, int(nominal * (1 - spread))), int(
                nominal * (1 + spread)
            )
        else:
            lo_v, hi_v = nominal * (1 - spread), nominal * (1 + spread)

        lo_g, lo_a = _gflops_and_anchor(base.with_dram(**{field: lo_v}))
        hi_g, hi_a = _gflops_and_anchor(base.with_dram(**{field: hi_v}))
        rows.append(
            SensitivityRow(
                field=field,
                low_value=float(lo_v),
                high_value=float(hi_v),
                gflops=(lo_g, nominal_gflops, hi_g),
                anchor_single=(lo_a, nominal_anchor, hi_a),
            )
        )
    return rows
