"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.harness.paper_data` — the published numbers (comparison
  targets only; the models never read them);
* :mod:`repro.harness.calibrate` — re-derive the model anchors and check
  they still hold;
* :mod:`repro.harness.experiments` — one registered experiment per
  table/figure, each returning rendered text plus machine-readable rows;
* :mod:`repro.harness.report` — side-by-side paper-vs-model rendering;
* ``python -m repro.harness`` — run everything (or one id) from a shell.
"""

from repro.harness.experiments import EXPERIMENTS, run_experiment, ExperimentResult
from repro.harness.calibrate import calibration_report, CalibrationReport
from repro.harness.export import collect_results, export_results
from repro.harness.regression import compare_to_baseline, load_baseline
from repro.harness.scorecard import Score, scorecard
from repro.harness.sensitivity import sensitivity_study
from repro.harness.svgfig import grouped_bar_svg, write_figure_svgs
from repro.harness.whatif import (
    bandwidth_scaling_study,
    double_precision_study,
    interconnect_study,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "calibration_report",
    "CalibrationReport",
    "collect_results",
    "export_results",
    "compare_to_baseline",
    "load_baseline",
    "Score",
    "scorecard",
    "sensitivity_study",
    "grouped_bar_svg",
    "write_figure_svgs",
    "bandwidth_scaling_study",
    "double_precision_study",
    "interconnect_study",
]
