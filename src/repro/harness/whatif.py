"""What-if studies: the paper's forward-looking questions, quantified.

Section 5 closes with two wishes: "application kernels confinement within
the card" (modeled in :mod:`repro.apps.docking`) and "facilitation of
faster GPU interfaces".  Section 4.5 promises a double-precision version
"as soon as such cards ... are available".  This module answers both with
the calibrated models:

* :func:`interconnect_study` — the 256^3 transform with each card's PCIe
  link swapped for faster (or slower) generations;
* :func:`bandwidth_scaling_study` — on-board GFLOPS as device memory
  bandwidth scales (where does the kernel stop being bandwidth-bound?);
* :func:`double_precision_device` / :func:`double_precision_study` — a
  hypothetical GT200-class card (the actual successor) running the
  five-step kernel in double precision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.estimator import estimate_fft3d
from repro.gpu.memsystem import MemorySystem
from repro.gpu.pcie import PcieLink
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX

__all__ = [
    "InterconnectPoint",
    "interconnect_study",
    "bandwidth_scaling_study",
    "double_precision_device",
    "double_precision_study",
]

#: Hypothetical faster links (PCIe 3.0 didn't exist in 2008 — that's the
#: point of a what-if).
PCIE_3_0_X16 = PcieLink("3.0 x16", raw_bandwidth=15.75e9,
                        h2d_efficiency=0.80, d2h_efficiency=0.80)
PCIE_2_0_X16_WHATIF = PcieLink("2.0 x16", raw_bandwidth=8.0e9,
                               h2d_efficiency=0.65, d2h_efficiency=0.63)
PCIE_1_1_X16_WHATIF = PcieLink("1.1 x16", raw_bandwidth=4.0e9,
                               h2d_efficiency=0.705, d2h_efficiency=0.838)

_LINKS = (PCIE_1_1_X16_WHATIF, PCIE_2_0_X16_WHATIF, PCIE_3_0_X16)


@dataclass(frozen=True)
class InterconnectPoint:
    """One (device, link) combination's predicted 256^3 performance."""

    device: str
    link: str
    on_board_gflops: float
    total_gflops: float

    @property
    def transfer_penalty(self) -> float:
        """Fraction of on-board performance lost to transfers."""
        return 1.0 - self.total_gflops / self.on_board_gflops


def interconnect_study(
    device: DeviceSpec = GEFORCE_8800_GTX, n: int = 256
) -> list[InterconnectPoint]:
    """256^3 transform under each PCIe generation."""
    est = estimate_fft3d(device, n)
    n_bytes = n**3 * 8
    out = []
    for link in _LINKS:
        h2d = link.transfer_time(n_bytes, "h2d")
        d2h = link.transfer_time(n_bytes, "d2h")
        total = h2d + est.on_board_seconds + d2h
        out.append(
            InterconnectPoint(
                device=device.name,
                link=link.name,
                on_board_gflops=est.on_board_gflops,
                total_gflops=est.nominal_flops / total / 1e9,
            )
        )
    return out


def bandwidth_scaling_study(
    base: DeviceSpec = GEFORCE_8800_GTX,
    factors=(0.5, 1.0, 1.5, 2.0, 3.0),
    n: int = 256,
) -> dict[float, float]:
    """On-board GFLOPS as the memory clock scales by each factor.

    Reveals the bandwidth-bound -> compute-bound crossover: beyond it,
    more GB/s stops helping and the step-5 issue rate takes over.
    """
    out = {}
    for f in factors:
        if f <= 0:
            raise ValueError("scaling factors must be positive")
        dev = replace(
            base,
            name=base.name,
            mem_clock_mtps=base.mem_clock_mtps * f,
        )
        est = estimate_fft3d(dev, n, memsystem=MemorySystem(dev))
        out[f] = est.on_board_gflops
    return out


def double_precision_device(base: DeviceSpec = GEFORCE_8800_GTX) -> DeviceSpec:
    """A GT200-class what-if: DP support at 1/8 the SP issue rate.

    Models the paper's §4.5 plan ("implementing a double precision
    version ... as soon as such cards are available"); the GTX 280 that
    shipped months later had 30 SMs, 141 GB/s and 1:8 DP:SP throughput —
    we keep the 8800 GTX shader config and just enable DP to isolate the
    precision effect.
    """
    return replace(base, name=f"{base.name} (DP what-if)", supports_double=True)


def double_precision_study(n: int = 256) -> dict[str, float]:
    """Single vs double precision 256^3 on the DP what-if device.

    Doubling the element size doubles every kernel's traffic; the
    memory-bound steps slow ~2x, so the DP transform lands near half the
    SP GFLOPS — before even charging the slower DP ALUs.
    """
    dev = double_precision_device()
    sp = estimate_fft3d(dev, n, precision="single")
    dp = estimate_fft3d(dev, n, precision="double")
    return {
        "single_gflops": sp.on_board_gflops,
        "double_gflops": dp.on_board_gflops,
        "slowdown": sp.on_board_gflops / dp.on_board_gflops,
    }
