"""Machine-readable export of experiment results.

``python -m repro.harness --json results.json`` (or
:func:`export_results`) writes every experiment's raw rows to JSON, so
downstream tooling — regression trackers, plotting scripts, the paper-vs-
model comparisons in CI — can consume the reproduction without scraping
the text tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.calibrate import calibration_report
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import EXPERIMENT_ORDER

__all__ = ["collect_results", "export_results"]


def _jsonable(value):
    """Coerce experiment row values into JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def collect_results(ids: tuple[str, ...] | None = None) -> dict:
    """Run experiments and gather their rows into one document."""
    ids = ids or EXPERIMENT_ORDER
    cal = calibration_report()
    doc = {
        "paper": "Nukada et al., Bandwidth Intensive 3-D FFT kernel for "
                 "GPUs using CUDA, SC 2008",
        "calibration": {
            "single_stream_gbs": cal.single_stream_bw / 1e9,
            "many_stream_gbs": cal.many_stream_bw / 1e9,
            "step5_peak_fraction": cal.step5_peak_fraction,
            "anchors_hold": cal.within(),
        },
        "experiments": {},
    }
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}")
        result = run_experiment(exp_id)
        doc["experiments"][exp_id] = {
            "title": EXPERIMENTS[exp_id][0],
            "rows": _jsonable(result.rows),
        }
    return doc


def export_results(
    path: str | Path, ids: tuple[str, ...] | None = None
) -> Path:
    """Write :func:`collect_results` to ``path`` as pretty JSON."""
    path = Path(path)
    doc = collect_results(ids)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
