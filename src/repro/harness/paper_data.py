"""The paper's published numbers, verbatim.

Used exclusively for comparison reporting and shape assertions in the
test suite; no model in :mod:`repro.gpu`/:mod:`repro.core` reads this
module (calibration anchors are documented constants in
``repro.gpu.specs``).

All times in the units the paper prints (ms unless noted); bandwidths in
GB/s; rates in GFLOPS.
"""

from __future__ import annotations

GPUS = ("8800 GT", "8800 GTS", "8800 GTX")

# Table 1 (specifications).
TABLE1 = {
    "8800 GT": dict(core="G92", process=65, sm=14, sp=112, sp_clock=1.500,
                    gflops=336, capacity=512, interface=256, mem_clock=1800,
                    bandwidth=57.6),
    "8800 GTS": dict(core="G92", process=65, sm=16, sp=128, sp_clock=1.625,
                     gflops=416, capacity=512, interface=256, mem_clock=1940,
                     bandwidth=62.0),
    "8800 GTX": dict(core="G80", process=90, sm=16, sp=128, sp_clock=1.350,
                     gflops=345, capacity=768, interface=384, mem_clock=1800,
                     bandwidth=86.4),
}

# Section 2.1 anchors: multirow-copy bandwidth on the 8800 GTX.
STREAM_ANCHORS_GTX = {1: 71.7, 256: 30.7}

# Tables 3/4: pattern-pair bandwidth (GB/s), rows = input A..D,
# cols = output A..D.
TABLE3_GT = {
    "A": (47.4, 47.9, 46.8, 47.1),
    "B": (48.2, 48.3, 46.8, 47.1),
    "C": (47.3, 47.1, 34.4, 33.3),
    "D": (45.6, 45.2, 32.6, 27.8),
}
TABLE4_GTX = {
    "A": (71.5, 71.5, 67.7, 66.8),
    "B": (71.3, 71.3, 67.6, 67.0),
    "C": (68.7, 68.5, 51.3, 50.4),
    "D": (67.5, 66.7, 50.0, 43.7),
}

# Table 6: conventional six-step, 256^3 — mean per-step (time ms, GB/s).
TABLE6 = {
    "8800 GT": dict(fft=(5.74, 46.7), transpose=(13.0, 20.7)),
    "8800 GTS": dict(fft=(5.09, 52.7), transpose=(12.3, 21.8)),
    "8800 GTX": dict(fft=(5.52, 48.5), transpose=(7.85, 34.2)),
}

# Table 7: bandwidth-intensive kernel, 256^3 — (time ms, GB/s).
TABLE7 = {
    "8800 GT": dict(step13=(6.65, 40.4), step24=(6.70, 40.0), step5=(5.72, 47.0)),
    "8800 GTS": dict(step13=(6.09, 44.1), step24=(6.23, 43.1), step5=(5.17, 51.9)),
    "8800 GTX": dict(step13=(4.39, 61.2), step24=(4.70, 57.1), step5=(5.52, 48.6)),
}

# Table 8: 65536 x 256-point 1-D FFTs — (time ms, GFLOPS).
TABLE8 = {
    "8800 GT": dict(ours=(5.72, 117.0), cufft=(13.7, 49.0)),
    "8800 GTS": dict(ours=(5.17, 130.0), cufft=(11.4, 58.9)),
    "8800 GTX": dict(ours=(5.52, 122.0), cufft=(13.2, 50.8)),
}

# Table 9: 256^3 on the 8800 GTS, X-axis variants (ms).
TABLE9_GTS = {
    "shared": dict(x_axis=(5.17,), yz=24.7, total=29.9),
    "texture": dict(x_axis=(5.11, 8.43), yz=24.7, total=38.3),
    "non_coalesced": dict(x_axis=(5.13, 14.3), yz=24.7, total=44.2),
}

# Table 10: 256^3 including transfers — ms and GB/s / GFLOPS.
TABLE10 = {
    "8800 GT": dict(pcie="2.0 x16", h2d=(25.9, 5.18), fft=(32.3, 62.2),
                    d2h=(26.1, 5.14), total=(84.3, 23.9)),
    "8800 GTS": dict(pcie="2.0 x16", h2d=(25.7, 5.21), fft=(30.0, 67.1),
                     d2h=(27.3, 4.91), total=(83.1, 24.2)),
    "8800 GTX": dict(pcie="1.1 x16", h2d=(47.6, 2.82), fft=(23.8, 84.4),
                     d2h=(40.1, 3.35), total=(112.0, 18.0)),
}

# Figure 1 (256^3 GFLOPS, on-board).  "ours" from Table 10's FFT column;
# the conventional/CUFFT bars are read off the figure (±1).
FIG1 = {
    "8800 GT": dict(ours=62.2, conventional=36.0, cufft=21.0),
    "8800 GTS": dict(ours=67.1, conventional=39.0, cufft=23.0),
    "8800 GTX": dict(ours=84.4, conventional=50.0, cufft=25.0),
}

# Figures 2/3 (64^3 and 128^3 GFLOPS), bars read off the figures (±2).
FIG2_64 = {
    "8800 GT": dict(ours=38.0, conventional=22.0, cufft=12.0),
    "8800 GTS": dict(ours=41.0, conventional=24.0, cufft=13.0),
    "8800 GTX": dict(ours=52.0, conventional=30.0, cufft=15.0),
}
FIG3_128 = {
    "8800 GT": dict(ours=52.0, conventional=30.0, cufft=17.0),
    "8800 GTS": dict(ours=56.0, conventional=33.0, cufft=19.0),
    "8800 GTX": dict(ours=70.0, conventional=42.0, cufft=21.0),
}

# Table 11: FFTW 3.2alpha2, single precision, 4 cores (time ms, GFLOPS).
TABLE11 = {
    "AMD Phenom 9500": (195.0, 10.3),
    "Intel Core 2 Quad Q6700": (188.0, 10.7),
}

# Table 12: 512^3 (seconds; total time and GFLOPS).
TABLE12 = {
    "8800 GT": dict(
        s1_h2d=0.216, s1_fft=0.360, s1_twiddle=0.043, s1_d2h=0.217,
        s2_h2d=0.206, s2_fft=0.062, s2_d2h=0.212, total=1.32, gflops=13.7,
    ),
    "8800 GTS": dict(
        s1_h2d=0.217, s1_fft=0.287, s1_twiddle=0.042, s1_d2h=0.217,
        s2_h2d=0.207, s2_fft=0.052, s2_d2h=0.216, total=1.24, gflops=14.6,
    ),
    "8800 GTX": dict(
        s1_h2d=0.419, s1_fft=0.224, s1_twiddle=0.031, s1_d2h=0.322,
        s2_h2d=0.381, s2_fft=0.033, s2_d2h=0.339, total=1.75, gflops=10.3,
    ),
    "FFTW": dict(total=1.93, gflops=9.40),
}

# Table 13: whole-system power (watts) and efficiency.
TABLE13 = {
    "CPU (RIVA128)": dict(idle=126, load=140, gflops=10.3, eff=0.074),
    "8800 GT": dict(idle=180, load=215, gflops=62.2, eff=0.289),
    "8800 GTS": dict(idle=196, load=238, gflops=67.2, eff=0.282),
    "8800 GTX": dict(idle=224, load=290, gflops=84.4, eff=0.291),
}

# Section 4.2: step 5 achieves ~30% of peak FLOPs.
STEP5_PEAK_FRACTION = 0.30
