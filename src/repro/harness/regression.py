"""Regression gate: compare current model outputs against a frozen baseline.

``src/repro/harness/data/baseline_results.json`` snapshots every
experiment's rows at a known-good state (regenerate with
``python -m repro.harness --json src/repro/harness/data/baseline_results.json``
after an intentional model change).  :func:`compare_to_baseline` re-runs
the experiments and reports any numeric drift beyond tolerance — the test
suite runs it on the cheap experiments, so an accidental change to a
calibrated constant or a model equation fails loudly instead of silently
shifting every table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from importlib import resources
from pathlib import Path

from repro.harness.export import collect_results

__all__ = ["Drift", "load_baseline", "compare_to_baseline"]

#: Relative drift tolerated before a value counts as a regression.  The
#: models are deterministic; this only absorbs float round-trip noise.
DEFAULT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Drift:
    """One value that moved beyond tolerance."""

    experiment: str
    key: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        scale = max(abs(self.baseline), 1e-12)
        return abs(self.current - self.baseline) / scale


def load_baseline(path: str | Path | None = None) -> dict:
    """Load the committed baseline document."""
    if path is not None:
        return json.loads(Path(path).read_text())
    ref = resources.files("repro.harness") / "data" / "baseline_results.json"
    return json.loads(ref.read_text())


def _walk(prefix: str, node, out: dict) -> None:
    if isinstance(node, dict):
        for k, v in node.items():
            _walk(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def compare_to_baseline(
    ids: tuple[str, ...] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_path: str | Path | None = None,
) -> list[Drift]:
    """Re-run experiments and list values drifting beyond ``tolerance``."""
    baseline = load_baseline(baseline_path)
    current = collect_results(ids)
    drifts: list[Drift] = []
    for exp_id, cur_exp in current["experiments"].items():
        base_exp = baseline["experiments"].get(exp_id)
        if base_exp is None:
            drifts.append(Drift(exp_id, "<missing in baseline>", 0.0, 1.0))
            continue
        base_vals: dict[str, float] = {}
        cur_vals: dict[str, float] = {}
        _walk("", base_exp["rows"], base_vals)
        _walk("", cur_exp["rows"], cur_vals)
        for key, cur in cur_vals.items():
            base = base_vals.get(key)
            if base is None:
                drifts.append(Drift(exp_id, key, float("nan"), cur))
                continue
            scale = max(abs(base), 1e-12)
            if abs(cur - base) / scale > tolerance:
                drifts.append(Drift(exp_id, key, base, cur))
    return drifts
