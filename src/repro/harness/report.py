"""Full-report rendering: every experiment, paper vs model."""

from __future__ import annotations

from repro.harness.calibrate import calibration_report
from repro.harness.experiments import EXPERIMENTS, run_experiment

__all__ = ["full_report", "EXPERIMENT_ORDER"]

EXPERIMENT_ORDER = (
    "table1",
    "streams",
    "table3",
    "table4",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "fig1",
    "fig2",
    "fig3",
)


def full_report(ids: tuple[str, ...] | None = None) -> str:
    """Render the calibration summary plus every requested experiment."""
    ids = ids or EXPERIMENT_ORDER
    parts = []
    cal = calibration_report()
    parts.append(
        "Calibration anchors (8800 GTX): "
        f"single-stream {cal.single_stream_bw / 1e9:.1f} GB/s (paper 71.7), "
        f"256-stream {cal.many_stream_bw / 1e9:.1f} GB/s (paper 30.7), "
        f"step-5 compute {cal.step5_peak_fraction * 100:.0f}% of peak "
        "(paper ~30%)"
    )
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}")
        result = run_experiment(exp_id)
        parts.append("")
        parts.append("=" * 72)
        parts.append(EXPERIMENTS[exp_id][0])
        parts.append("=" * 72)
        parts.append(result.text)
    return "\n".join(parts)
