"""The reproduction scorecard: one number per table/figure.

Collapses every paper-vs-model comparison into per-experiment error
statistics and an overall verdict, so "how faithful is this
reproduction?" has a machine-checkable answer.  The benchmark suite
prints it; the test suite asserts the thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness import paper_data
from repro.harness.experiments import run_experiment

__all__ = ["Score", "scorecard"]


@dataclass(frozen=True)
class Score:
    """Error statistics of one experiment against the paper."""

    experiment: str
    #: (label, model value, paper value) triples compared.
    comparisons: tuple[tuple[str, float, float], ...]

    @property
    def n(self) -> int:
        return len(self.comparisons)

    @property
    def median_error(self) -> float:
        errs = sorted(self._errors())
        mid = len(errs) // 2
        if len(errs) % 2:
            return errs[mid]
        return 0.5 * (errs[mid - 1] + errs[mid])

    @property
    def max_error(self) -> float:
        return max(self._errors())

    @property
    def worst_case(self) -> str:
        errs = list(self._errors())
        label, model, paper = self.comparisons[errs.index(max(errs))]
        return f"{label}: {model:.3g} vs {paper:.3g}"

    def _errors(self):
        for _, model, paper in self.comparisons:
            scale = max(abs(paper), 1e-12)
            yield abs(model - paper) / scale


def _pairs_pattern_table(exp_id, paper_table):
    result = run_experiment(exp_id)
    out = []
    for pair, model in result.rows.items():
        paper = paper_table[pair[0]]["ABCD".index(pair[1])]
        out.append((pair, model, paper))
    return out


def scorecard() -> list[Score]:
    """Every quantitative table/figure scored against the paper."""
    scores = []

    rows = run_experiment("table1").rows
    scores.append(Score("table1", tuple(
        (f"{name} {key}", rows[name][key], paper_data.TABLE1[name][key2])
        for name in rows
        for key, key2 in (("gflops", "gflops"), ("bandwidth", "bandwidth"))
    )))

    sweep = run_experiment("streams").rows
    scores.append(Score("streams", tuple(
        (f"{c} streams", sweep[c], paper_data.STREAM_ANCHORS_GTX[c])
        for c in paper_data.STREAM_ANCHORS_GTX
    )))

    scores.append(Score("table3", tuple(
        _pairs_pattern_table("table3", paper_data.TABLE3_GT)
    )))
    scores.append(Score("table4", tuple(
        _pairs_pattern_table("table4", paper_data.TABLE4_GTX)
    )))

    rows = run_experiment("table6").rows
    scores.append(Score("table6", tuple(
        c
        for name in rows
        for c in (
            (f"{name} fft", rows[name]["fft_ms"],
             paper_data.TABLE6[name]["fft"][0]),
            (f"{name} transpose", rows[name]["transpose_ms"],
             paper_data.TABLE6[name]["transpose"][0]),
        )
    )))

    rows = run_experiment("table7").rows
    scores.append(Score("table7", tuple(
        c
        for name in rows
        for c in (
            (f"{name} s13", rows[name]["step13_ms"],
             paper_data.TABLE7[name]["step13"][0]),
            (f"{name} s24", rows[name]["step24_ms"],
             paper_data.TABLE7[name]["step24"][0]),
            (f"{name} s5", rows[name]["step5_ms"],
             paper_data.TABLE7[name]["step5"][0]),
        )
    )))

    rows = run_experiment("table8").rows
    scores.append(Score("table8", tuple(
        c
        for name in rows
        for c in (
            (f"{name} ours", rows[name]["ours_ms"],
             paper_data.TABLE8[name]["ours"][0]),
            (f"{name} cufft", rows[name]["cufft_ms"],
             paper_data.TABLE8[name]["cufft"][0]),
        )
    )))

    rows = run_experiment("table9").rows
    scores.append(Score("table9", tuple(
        (key, rows[key]["total_ms"], paper_data.TABLE9_GTS[key]["total"])
        for key in rows
    )))

    rows = run_experiment("table10").rows
    scores.append(Score("table10", tuple(
        (f"{name} total", rows[name]["total_ms"],
         paper_data.TABLE10[name]["total"][0])
        for name in rows
    )))

    rows = run_experiment("table11").rows
    scores.append(Score("table11", tuple(
        (name, rows[name]["gflops"], paper_data.TABLE11[name][1])
        for name in rows
    )))

    rows = run_experiment("table12").rows
    scores.append(Score("table12", tuple(
        (name, rows[name]["total_s"], paper_data.TABLE12[name]["total"])
        for name in rows
    )))

    rows = run_experiment("table13").rows
    mapping = {"CPU": "CPU (RIVA128)"}
    scores.append(Score("table13", tuple(
        (name, rows[name]["gflops_per_watt"],
         paper_data.TABLE13[mapping.get(name, name)]["eff"])
        for name in rows
    )))

    rows = run_experiment("fig1").rows
    scores.append(Score("fig1", tuple(
        (name, rows[name]["ours"], rows[name]["paper"]["ours"])
        for name in rows
    )))

    return scores
