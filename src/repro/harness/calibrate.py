"""Calibration verification: do the frozen constants still hit the anchors?

The simulator's free parameters (DRAM timings, issue-model fractions,
PCIe efficiencies) were fitted once against three anchor observations
from the paper and then frozen in :mod:`repro.gpu.specs`:

1. single-stream copy bandwidth on the 8800 GTX = 71.7 GB/s (§2.1);
2. 256-stream copy bandwidth on the 8800 GTX = 30.7 GB/s (§2.1);
3. the step-5 kernel sustains ~30% of peak FLOPs (§4.2).

Everything else the benchmarks reproduce is *prediction*, not fitting.
This module recomputes the anchors from the current constants so the test
suite (and a skeptical user) can verify nothing drifted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import estimate_batch_1d
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import GEFORCE_8800_GTX, DeviceSpec

__all__ = ["CalibrationReport", "calibration_report"]

#: The paper's anchor values.
ANCHOR_SINGLE_STREAM = 71.7e9
ANCHOR_256_STREAMS = 30.7e9
ANCHOR_STEP5_FRACTION = 0.30


@dataclass(frozen=True)
class CalibrationReport:
    """Model-derived anchor values with their targets."""

    single_stream_bw: float
    many_stream_bw: float
    step5_peak_fraction: float

    @property
    def single_stream_error(self) -> float:
        return abs(self.single_stream_bw - ANCHOR_SINGLE_STREAM) / ANCHOR_SINGLE_STREAM

    @property
    def many_stream_error(self) -> float:
        return abs(self.many_stream_bw - ANCHOR_256_STREAMS) / ANCHOR_256_STREAMS

    @property
    def step5_error(self) -> float:
        return abs(self.step5_peak_fraction - ANCHOR_STEP5_FRACTION)

    def within(self, tolerance: float = 0.05) -> bool:
        """True when all anchors reproduce within ``tolerance``."""
        return (
            self.single_stream_error <= tolerance
            and self.many_stream_error <= tolerance
            and self.step5_error <= 0.10  # the paper says "about 30%"
        )


def calibration_report(device: DeviceSpec = GEFORCE_8800_GTX) -> CalibrationReport:
    """Recompute the three anchors from the current model constants."""
    ms = MemorySystem(device)
    single = ms.stream_copy(1).bandwidth
    many = ms.stream_copy(256).bandwidth
    t = estimate_batch_1d(device, 256, 65536, memsystem=ms)
    # The paper's "about 30% of peak" refers to the kernel's compute
    # capability (Section 4.2's cubin analysis), independent of whether a
    # particular card ends up memory-bound.
    compute_gflops = t.flops / t.compute_seconds / 1e9
    return CalibrationReport(
        single_stream_bw=single,
        many_stream_bw=many,
        step5_peak_fraction=compute_gflops / device.peak_gflops,
    )
