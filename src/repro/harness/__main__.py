"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness            # everything
    python -m repro.harness table7     # one experiment
    python -m repro.harness fig1 fig2  # several
    python -m repro.harness --list     # available ids
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import EXPERIMENT_ORDER, full_report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures from the models.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="additionally export machine-readable results to PATH",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="render Figures 1-3 as SVG files into DIR and exit",
    )
    args = parser.parse_args(argv)

    if args.svg:
        from repro.harness.svgfig import write_figure_svgs

        for path in write_figure_svgs(args.svg):
            print(f"wrote {path}")
        return 0

    if args.list:
        for exp_id in EXPERIMENT_ORDER:
            print(f"{exp_id:10s} {EXPERIMENTS[exp_id][0]}")
        return 0

    ids = tuple(args.experiments) or None
    try:
        print(full_report(ids))
        if args.json:
            from repro.harness.export import export_results

            path = export_results(args.json, ids)
            print(f"\nwrote machine-readable results to {path}")
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
