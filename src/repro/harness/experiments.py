"""Registry of experiments: one per table and figure in the paper.

Each experiment regenerates its table/figure from the models and renders
it side by side with the paper's published values.  ``run_experiment(id)``
returns an :class:`ExperimentResult` whose ``rows`` field carries the raw
numbers for programmatic checks (the benchmark suite asserts the shape
criteria on them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.cufft_model import estimate_cufft_1d, estimate_cufft_3d
from repro.baselines.fftw_cpu import estimate_fftw
from repro.baselines.six_step import estimate_six_step
from repro.core.estimator import estimate_batch_1d, estimate_fft3d
from repro.core.nosharedmem import estimate_x_axis_variants
from repro.core.out_of_core import estimate_out_of_core
from repro.core.patterns import PATTERNS, pattern_table
from repro.gpu.memsystem import MemorySystem
from repro.gpu.power import SystemPowerModel
from repro.gpu.specs import (
    ALL_GPUS,
    AMD_PHENOM_9500,
    GEFORCE_8800_GT,
    GEFORCE_8800_GTS,
    GEFORCE_8800_GTX,
    INTEL_CORE2_Q6700,
)
from repro.harness import paper_data
from repro.util.ascii_plot import grouped_bar_chart
from repro.util.tables import Table

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Rendered experiment output plus machine-readable rows."""

    experiment_id: str
    title: str
    text: str
    rows: dict = field(default_factory=dict)


_REGISTRY: dict[str, tuple[str, Callable[[], ExperimentResult]]] = {}


def _experiment(exp_id: str, title: str):
    def wrap(fn: Callable[[], ExperimentResult]):
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return wrap


# ----------------------------------------------------------------------


@_experiment("table1", "Table 1: GPU specifications")
def _table1() -> ExperimentResult:
    t = Table(
        ["Model", "Core", "SM", "SP", "SP clock", "GFLOPS", "Interface",
         "Mem clock", "GB/s"],
        title="Table 1 (model-derived | paper)",
    )
    rows = {}
    for dev in ALL_GPUS:
        p = paper_data.TABLE1[dev.name]
        t.add_row([
            dev.name,
            dev.core,
            dev.n_sm,
            dev.n_sp,
            f"{dev.sp_clock_ghz:.3f} GHz",
            f"{dev.peak_gflops:.0f} | {p['gflops']}",
            f"{dev.interface_bits}-bit",
            f"{dev.mem_clock_mtps:.0f} MT/s",
            f"{dev.peak_bandwidth / 1e9:.1f} | {p['bandwidth']}",
        ])
        rows[dev.name] = dict(
            gflops=dev.peak_gflops, bandwidth=dev.peak_bandwidth / 1e9
        )
    return ExperimentResult("table1", "GPU specifications", t.render(), rows)


@_experiment("streams", "Section 2.1: bandwidth vs stream count (8800 GTX)")
def _streams() -> ExperimentResult:
    ms = MemorySystem(GEFORCE_8800_GTX)
    counts = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    t = Table(["Streams", "Model GB/s", "Paper GB/s"],
              title="Multirow copy bandwidth, 8800 GTX")
    rows = {}
    for c in counts:
        bw = ms.stream_copy(c).gbytes_per_s
        paper = paper_data.STREAM_ANCHORS_GTX.get(c)
        t.add_row([c, f"{bw:.1f}", f"{paper:.1f}" if paper else "-"])
        rows[c] = bw
    return ExperimentResult("streams", "stream-count sweep", t.render(), rows)


def _pattern_exp(exp_id, device, paper_table, blocks):
    table = pattern_table(device, blocks=blocks)
    t = Table(
        ["In\\Out"] + [p.value for p in PATTERNS],
        title=f"{exp_id}: pattern-pair bandwidth on {device.name} "
        "(model | paper, GB/s)",
    )
    rows = {}
    for pi in PATTERNS:
        cells = [pi.value]
        for j, po in enumerate(PATTERNS):
            bw = table[(pi, po)] / 1e9
            cells.append(f"{bw:.1f} | {paper_table[pi.value][j]:.1f}")
            rows[f"{pi.value}{po.value}"] = bw
        t.add_row(cells)
    return ExperimentResult(exp_id, f"pattern pairs on {device.name}",
                            t.render(), rows)


@_experiment("table3", "Table 3: pattern-pair bandwidth, 8800 GT")
def _table3() -> ExperimentResult:
    return _pattern_exp("table3", GEFORCE_8800_GT, paper_data.TABLE3_GT, 42)


@_experiment("table4", "Table 4: pattern-pair bandwidth, 8800 GTX")
def _table4() -> ExperimentResult:
    return _pattern_exp("table4", GEFORCE_8800_GTX, paper_data.TABLE4_GTX, 48)


@_experiment("table6", "Table 6: conventional six-step per-step times")
def _table6() -> ExperimentResult:
    t = Table(
        ["Model", "FFT ms (paper)", "FFT GB/s", "Transpose ms (paper)",
         "Transpose GB/s (paper)"],
        title="Table 6: conventional algorithm, 256^3",
    )
    rows = {}
    for dev in ALL_GPUS:
        e = estimate_six_step(dev, 256)
        p = paper_data.TABLE6[dev.name]
        fft_ms = e.mean_fft_seconds * 1e3
        tr_ms = e.mean_transpose_seconds * 1e3
        tr_bw = e.mean_transpose_bandwidth / 1e9
        t.add_row([
            dev.name,
            f"{fft_ms:.2f} ({p['fft'][0]})",
            f"{2 * 256 ** 3 * 8 / e.mean_fft_seconds / 1e9:.1f}",
            f"{tr_ms:.2f} ({p['transpose'][0]})",
            f"{tr_bw:.1f} ({p['transpose'][1]})",
        ])
        rows[dev.name] = dict(
            fft_ms=fft_ms, transpose_ms=tr_ms, transpose_gbs=tr_bw,
            onboard_gflops=e.on_board_gflops,
        )
    return ExperimentResult("table6", "six-step steps", t.render(), rows)


@_experiment("table7", "Table 7: bandwidth-intensive kernel per-step times")
def _table7() -> ExperimentResult:
    t = Table(
        ["Model", "Step 1,3 ms (paper)", "GB/s (paper)",
         "Step 2,4 ms (paper)", "GB/s (paper)", "Step 5 ms (paper)",
         "GB/s (paper)"],
        title="Table 7: our kernel, 256^3",
    )
    rows = {}
    for dev in ALL_GPUS:
        e = estimate_fft3d(dev, 256)
        p = paper_data.TABLE7[dev.name]
        s13, s24, s5 = e.steps[0], e.steps[1], e.steps[4]
        t.add_row([
            dev.name,
            f"{s13.seconds * 1e3:.2f} ({p['step13'][0]})",
            f"{s13.gbytes_per_s:.1f} ({p['step13'][1]})",
            f"{s24.seconds * 1e3:.2f} ({p['step24'][0]})",
            f"{s24.gbytes_per_s:.1f} ({p['step24'][1]})",
            f"{s5.seconds * 1e3:.2f} ({p['step5'][0]})",
            f"{s5.gbytes_per_s:.1f} ({p['step5'][1]})",
        ])
        rows[dev.name] = dict(
            step13_ms=s13.seconds * 1e3,
            step24_ms=s24.seconds * 1e3,
            step5_ms=s5.seconds * 1e3,
            onboard_gflops=e.on_board_gflops,
        )
    return ExperimentResult("table7", "five-step steps", t.render(), rows)


@_experiment("table8", "Table 8: 65536 x 256-point 1-D FFTs")
def _table8() -> ExperimentResult:
    t = Table(
        ["Model", "Ours ms (paper)", "Ours GFLOPS (paper)",
         "CUFFT ms (paper)", "CUFFT GFLOPS (paper)"],
        title="Table 8: batched 1-D transforms",
    )
    rows = {}
    for dev in ALL_GPUS:
        ours = estimate_batch_1d(dev, 256, 65536)
        cufft = estimate_cufft_1d(dev, 256, 65536)
        p = paper_data.TABLE8[dev.name]
        t.add_row([
            dev.name,
            f"{ours.seconds * 1e3:.2f} ({p['ours'][0]})",
            f"{ours.gflops:.0f} ({p['ours'][1]:.0f})",
            f"{cufft.seconds * 1e3:.1f} ({p['cufft'][0]})",
            f"{cufft.gflops:.1f} ({p['cufft'][1]})",
        ])
        rows[dev.name] = dict(
            ours_ms=ours.seconds * 1e3, ours_gflops=ours.gflops,
            cufft_ms=cufft.seconds * 1e3, cufft_gflops=cufft.gflops,
        )
    return ExperimentResult("table8", "batched 1-D", t.render(), rows)


@_experiment("table9", "Table 9: shared vs texture vs non-coalesced (GTS)")
def _table9() -> ExperimentResult:
    variants = estimate_x_axis_variants(GEFORCE_8800_GTS)
    t = Table(
        ["Variant", "X axis ms (paper)", "Y&Z ms (paper)", "Total ms (paper)"],
        title="Table 9: X-axis data-exchange variants, 256^3 on 8800 GTS",
    )
    rows = {}
    for key, v in variants.items():
        p = paper_data.TABLE9_GTS[key]
        x_paper = " + ".join(f"{x}" for x in p["x_axis"])
        t.add_row([
            v.name,
            f"{v.x_axis_total * 1e3:.1f} ({x_paper})",
            f"{v.yz_axes * 1e3:.1f} ({p['yz']})",
            f"{v.total * 1e3:.1f} ({p['total']})",
        ])
        rows[key] = dict(x_ms=v.x_axis_total * 1e3, total_ms=v.total * 1e3)
    return ExperimentResult("table9", "shared-memory effect", t.render(), rows)


@_experiment("table10", "Table 10: 256^3 including PCIe transfers")
def _table10() -> ExperimentResult:
    t = Table(
        ["Model", "PCIe", "H2D ms (paper)", "FFT ms (paper)",
         "D2H ms (paper)", "Total ms (paper)", "GFLOPS (paper)"],
        title="Table 10: 256^3 with host<->device transfers",
    )
    rows = {}
    for dev in ALL_GPUS:
        e = estimate_fft3d(dev, 256)
        p = paper_data.TABLE10[dev.name]
        t.add_row([
            dev.name,
            dev.pcie,
            f"{e.h2d_seconds * 1e3:.1f} ({p['h2d'][0]})",
            f"{e.on_board_seconds * 1e3:.1f} ({p['fft'][0]})",
            f"{e.d2h_seconds * 1e3:.1f} ({p['d2h'][0]})",
            f"{e.total_seconds * 1e3:.1f} ({p['total'][0]})",
            f"{e.total_gflops:.1f} ({p['total'][1]})",
        ])
        rows[dev.name] = dict(
            h2d_ms=e.h2d_seconds * 1e3,
            fft_ms=e.on_board_seconds * 1e3,
            d2h_ms=e.d2h_seconds * 1e3,
            total_ms=e.total_seconds * 1e3,
            total_gflops=e.total_gflops,
            onboard_gflops=e.on_board_gflops,
        )
    return ExperimentResult("table10", "with transfers", t.render(), rows)


@_experiment("table11", "Table 11: FFTW on CPUs")
def _table11() -> ExperimentResult:
    t = Table(
        ["Processor", "Time ms (paper)", "GFLOPS (paper)"],
        title="Table 11: FFTW 3.2alpha, single precision, 256^3",
    )
    rows = {}
    for cpu in (AMD_PHENOM_9500, INTEL_CORE2_Q6700):
        e = estimate_fftw(cpu, 256)
        p = paper_data.TABLE11[cpu.name]
        t.add_row([
            cpu.name,
            f"{e.seconds * 1e3:.0f} ({p[0]:.0f})",
            f"{e.gflops:.1f} ({p[1]})",
        ])
        rows[cpu.name] = dict(ms=e.seconds * 1e3, gflops=e.gflops)
    return ExperimentResult("table11", "FFTW baseline", t.render(), rows)


@_experiment("table12", "Table 12: 512^3 out-of-core")
def _table12() -> ExperimentResult:
    t = Table(
        ["Model", "S1 H2D", "S1 FFT", "Twiddle", "S1 D2H", "S2 H2D",
         "S2 FFT", "S2 D2H", "Total s (paper)", "GFLOPS (paper)"],
        title="Table 12: 512^3 (seconds)",
    )
    rows = {}
    for dev in ALL_GPUS:
        e = estimate_out_of_core(dev, 512)
        p = paper_data.TABLE12[dev.name]
        t.add_row([
            dev.name,
            f"{e.stage1_h2d:.3f}",
            f"{e.stage1_fft:.3f}",
            f"{e.stage1_twiddle:.3f}",
            f"{e.stage1_d2h:.3f}",
            f"{e.stage2_h2d:.3f}",
            f"{e.stage2_fft:.3f}",
            f"{e.stage2_d2h:.3f}",
            f"{e.total_seconds:.2f} ({p['total']})",
            f"{e.total_gflops:.1f} ({p['gflops']})",
        ])
        rows[dev.name] = dict(
            total_s=e.total_seconds, gflops=e.total_gflops,
            transfer_s=e.transfer_seconds,
        )
    fftw = estimate_fftw(AMD_PHENOM_9500, 512)
    pw = paper_data.TABLE12["FFTW"]
    t.add_row(["FFTW", "-", "-", "-", "-", "-", "-", "-",
               f"{fftw.seconds:.2f} ({pw['total']})",
               f"{fftw.gflops:.2f} ({pw['gflops']})"])
    rows["FFTW"] = dict(total_s=fftw.seconds, gflops=fftw.gflops)
    return ExperimentResult("table12", "out-of-core 512^3", t.render(), rows)


@_experiment("table13", "Table 13: system power and efficiency")
def _table13() -> ExperimentResult:
    model = SystemPowerModel()
    t = Table(
        ["Configuration", "Idle W (paper)", "Load W (paper)",
         "GFLOPS", "GFLOPS/W (paper)"],
        title="Table 13: whole-system power, repeated 256^3 FFT",
    )
    rows = {}
    cpu_gflops = estimate_fftw(AMD_PHENOM_9500, 256).gflops
    reading = model.fft_on_cpu(cpu_gflops)
    p = paper_data.TABLE13["CPU (RIVA128)"]
    t.add_row([
        "CPU (RIVA128)",
        f"{reading.idle_watts:.0f} ({p['idle']})",
        f"{reading.load_watts:.0f} ({p['load']})",
        f"{reading.gflops:.1f}",
        f"{reading.gflops_per_watt:.3f} ({p['eff']})",
    ])
    rows["CPU"] = dict(gflops_per_watt=reading.gflops_per_watt)
    for dev in ALL_GPUS:
        gflops = estimate_fft3d(dev, 256).on_board_gflops
        r = model.fft_on_gpu(dev, gflops)
        p = paper_data.TABLE13[dev.name]
        t.add_row([
            dev.name,
            f"{r.idle_watts:.0f} ({p['idle']})",
            f"{r.load_watts:.0f} ({p['load']})",
            f"{r.gflops:.1f}",
            f"{r.gflops_per_watt:.3f} ({p['eff']})",
        ])
        rows[dev.name] = dict(gflops_per_watt=r.gflops_per_watt)
    return ExperimentResult("table13", "power efficiency", t.render(), rows)


def _figure_exp(exp_id: str, n: int, paper_fig: dict) -> ExperimentResult:
    series = {"Bandwidth Intensive Kernel": [], "Conventional (transposes)": [],
              "CUFFT3D": []}
    rows = {}
    for dev in ALL_GPUS:
        ours = estimate_fft3d(dev, n).on_board_gflops
        conv = estimate_six_step(dev, n).on_board_gflops
        cufft = estimate_cufft_3d(dev, n).gflops
        series["Bandwidth Intensive Kernel"].append(ours)
        series["Conventional (transposes)"].append(conv)
        series["CUFFT3D"].append(cufft)
        rows[dev.name] = dict(
            ours=ours, conventional=conv, cufft=cufft,
            paper=paper_fig[dev.name],
        )
    chart = grouped_bar_chart(
        [d.name for d in ALL_GPUS],
        series,
        title=f"{exp_id}: 3-D FFT of size {n}^3 (GFLOPS; paper values in rows)",
        unit=" GF",
    )
    return ExperimentResult(exp_id, f"{n}^3 performance", chart, rows)


@_experiment("fig1", "Figure 1: 256^3 performance")
def _fig1() -> ExperimentResult:
    return _figure_exp("fig1", 256, paper_data.FIG1)


@_experiment("fig2", "Figure 2: 64^3 performance")
def _fig2() -> ExperimentResult:
    return _figure_exp("fig2", 64, paper_data.FIG2_64)


@_experiment("fig3", "Figure 3: 128^3 performance")
def _fig3() -> ExperimentResult:
    return _figure_exp("fig3", 128, paper_data.FIG3_128)


#: Public registry: id -> (title, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], ExperimentResult]]] = dict(_REGISTRY)


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        _, fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn()
