"""Spectral-method applications (Poisson solver, turbulence diagnostics).

The paper cites the Earth Simulator turbulence DNS [Yokokawa et al. 2002]
as the canonical HPC consumer of 3-D FFTs; these modules exercise that
workload class on the library.
"""

from repro.apps.spectral.poisson import (
    poisson_solve,
    spectral_laplacian,
    wavenumbers,
)
from repro.apps.spectral.turbulence import (
    energy_spectrum,
    random_solenoidal_field,
    taylor_green_field,
    dissipation_rate,
)
from repro.apps.spectral.navier_stokes import NSDiagnostics, SpectralNavierStokes
from repro.apps.spectral.heat import heat_evolve, heat_step

__all__ = [
    "NSDiagnostics",
    "SpectralNavierStokes",
    "heat_step",
    "heat_evolve",
    "poisson_solve",
    "spectral_laplacian",
    "wavenumbers",
    "energy_spectrum",
    "random_solenoidal_field",
    "taylor_green_field",
    "dissipation_rate",
]
