"""Turbulence-style spectral diagnostics.

The paper's HPC motivation [Yokokawa et al. 2002] is direct numerical
simulation of turbulence by Fourier spectral methods.  This module
provides the spectral-side toolkit such a code needs per time step:
synthetic solenoidal (divergence-free) velocity fields with a prescribed
Kolmogorov-like spectrum, shell-averaged energy spectra, and dissipation
diagnostics — each a batch of 3-D FFTs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.spectral.poisson import wavenumbers
from repro.fft.fft3d import fft3d, ifft3d

__all__ = [
    "random_solenoidal_field",
    "taylor_green_field",
    "energy_spectrum",
    "dissipation_rate",
]


def _kvec(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    k = wavenumbers(n)
    return (
        k[:, None, None] + 0 * k[None, :, None] + 0 * k[None, None, :],
        0 * k[:, None, None] + k[None, :, None] + 0 * k[None, None, :],
        0 * k[:, None, None] + 0 * k[None, :, None] + k[None, None, :],
    )


def random_solenoidal_field(
    n: int, slope: float = -5.0 / 3.0, seed: int = 0
) -> np.ndarray:
    """Divergence-free random velocity field with ``E(k) ~ k^slope``.

    Returns ``u`` of shape ``(3, n, n, n)`` (components uz, uy, ux), real.
    Construction: random complex modes shaped to the target spectrum,
    then projected onto the divergence-free subspace
    ``u_hat -= k (k . u_hat) / |k|^2`` and Hermitian-symmetrized by an
    inverse transform's real part.
    """
    if n < 4:
        raise ValueError("n must be >= 4")
    rng = np.random.default_rng(seed)
    kz, ky, kx = _kvec(n)
    kk = kz**2 + ky**2 + kx**2
    kmag = np.sqrt(kk)
    amp = np.zeros_like(kmag)
    nonzero = kmag > 0
    # E(k) ~ k^slope  ->  per-mode amplitude ~ k^((slope - 2)/2) in 3-D
    # (shell area ~ k^2).
    amp[nonzero] = kmag[nonzero] ** ((slope - 2.0) / 2.0)
    amp[kmag > n / 3] = 0.0  # dealiasing-style cutoff

    u = np.empty((3, n, n, n))
    uhat = np.empty((3, n, n, n), dtype=np.complex128)
    for c in range(3):
        phase = rng.uniform(0, 2 * np.pi, size=(n, n, n))
        uhat[c] = amp * np.exp(1j * phase)
    # Solenoidal projection.
    kk_safe = np.where(kk > 0, kk, 1.0)
    div = kz * uhat[0] + ky * uhat[1] + kx * uhat[2]
    uhat[0] -= kz * div / kk_safe
    uhat[1] -= ky * div / kk_safe
    uhat[2] -= kx * div / kk_safe
    for c in range(3):
        u[c] = ifft3d(uhat[c]).real
    # Normalize with a single common factor: per-component scaling would
    # destroy the divergence-free property.
    rms = np.sqrt(np.mean(np.sum(u**2, axis=0)) / 3.0)
    if rms > 0:
        u /= rms
    return u


def taylor_green_field(n: int) -> np.ndarray:
    """The Taylor-Green vortex initial condition (DNS benchmark)."""
    if n < 4:
        raise ValueError("n must be >= 4")
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    z, y, xg = np.meshgrid(x, x, x, indexing="ij")
    u = np.zeros((3, n, n, n))
    u[2] = np.cos(xg) * np.sin(y) * np.sin(z)   # ux
    u[1] = -np.sin(xg) * np.cos(y) * np.sin(z)  # uy
    u[0] = 0.0                                  # uz
    return u


def energy_spectrum(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged kinetic-energy spectrum ``E(k)``.

    ``u`` has shape ``(3, n, n, n)``.  Returns ``(k_shells, E)`` with
    ``sum(E) == 0.5 * mean(|u|^2)`` (Parseval, discrete normalization).
    """
    u = np.asarray(u)
    if u.ndim != 4 or u.shape[0] != 3:
        raise ValueError(f"u must be (3, n, n, n), got {u.shape}")
    n = u.shape[1]
    kz, ky, kx = _kvec(n)
    kmag = np.sqrt(kz**2 + ky**2 + kx**2)
    shells = np.arange(int(kmag.max()) + 2)
    energy = np.zeros(len(shells) - 1)
    for c in range(3):
        spec = fft3d(u[c].astype(np.complex128)) / u[c].size
        dens = 0.5 * np.abs(spec) ** 2
        idx = np.clip(np.round(kmag).astype(int), 0, len(shells) - 2)
        energy += np.bincount(idx.ravel(), dens.ravel(), minlength=len(shells) - 1)
    return shells[:-1].astype(np.float64), energy


def dissipation_rate(u: np.ndarray, viscosity: float = 1.0) -> float:
    """Spectral dissipation ``eps = 2 nu sum(k^2 E(k))``."""
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    k, e = energy_spectrum(u)
    return float(2.0 * viscosity * np.sum(k**2 * e))
