"""Spectral heat (diffusion) solver on the periodic cube.

The simplest PDE the 3-D FFT solves *exactly*: with
``u_t = alpha * laplacian(u)``, every Fourier mode decays as
``exp(-alpha |k|^2 t)``, so one forward transform, one elementwise
exponential, and one inverse transform advance the solution by any time
step without stability limits — a clean correctness workout for the
transform pipeline and a common building block (diffusion sub-steps in
splitting schemes, Gaussian blurs with exact kernels).
"""

from __future__ import annotations

import numpy as np

from repro.apps.spectral.poisson import wavenumbers
from repro.fft.fft3d import fft3d, ifft3d

__all__ = ["heat_step", "heat_evolve"]


def _ksq(shape: tuple[int, int, int]) -> np.ndarray:
    kz = wavenumbers(shape[0])[:, None, None]
    ky = wavenumbers(shape[1])[None, :, None]
    kx = wavenumbers(shape[2])[None, None, :]
    return kz**2 + ky**2 + kx**2


def heat_step(u: np.ndarray, alpha: float, dt: float) -> np.ndarray:
    """Advance the periodic heat equation by ``dt`` (exact in time).

    ``u`` is a real or complex 3-D field; ``alpha > 0`` the diffusivity.
    Unconditionally stable for any ``dt > 0``.
    """
    u = np.asarray(u)
    if u.ndim != 3:
        raise ValueError("u must be 3-D")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if dt <= 0:
        raise ValueError("dt must be positive")
    spec = fft3d(u.astype(np.complex128, copy=False))
    spec *= np.exp(-alpha * _ksq(u.shape) * dt)
    out = ifft3d(spec)
    return out.real if np.isrealobj(u) else out


def heat_evolve(
    u0: np.ndarray, alpha: float, t_final: float, n_snapshots: int = 1
) -> list[np.ndarray]:
    """Evolve to ``t_final``; return ``n_snapshots`` equally spaced states.

    Since the spectral step is exact, snapshots are computed directly from
    ``u0`` (no error accumulation).
    """
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    if n_snapshots < 1:
        raise ValueError("need at least one snapshot")
    times = np.linspace(t_final / n_snapshots, t_final, n_snapshots)
    return [heat_step(u0, alpha, float(t)) for t in times]
