"""Spectral Poisson solver on the periodic cube.

Solves ``laplacian(u) = f`` on ``[0, 2*pi)^3``: one forward 3-D FFT, a
pointwise division by ``-|k|^2``, one inverse transform — the textbook
pattern where the 3-D FFT *is* the solver.
"""

from __future__ import annotations

import numpy as np

from repro.fft.fft3d import fft3d, ifft3d

__all__ = ["wavenumbers", "spectral_laplacian", "poisson_solve"]


def wavenumbers(n: int) -> np.ndarray:
    """Integer wavenumbers in FFT order for an ``n``-point axis."""
    if n <= 0:
        raise ValueError("n must be positive")
    k = np.arange(n)
    k[k > n // 2] -= n
    return k.astype(np.float64)


def _ksq(shape: tuple[int, int, int]) -> np.ndarray:
    kz = wavenumbers(shape[0])[:, None, None]
    ky = wavenumbers(shape[1])[None, :, None]
    kx = wavenumbers(shape[2])[None, None, :]
    return kz**2 + ky**2 + kx**2


def spectral_laplacian(u: np.ndarray) -> np.ndarray:
    """Apply the periodic Laplacian spectrally (exact for band-limited u)."""
    u = np.asarray(u)
    if u.ndim != 3:
        raise ValueError("u must be 3-D")
    spec = fft3d(u.astype(np.complex128, copy=False))
    out = ifft3d(-_ksq(u.shape) * spec)
    return out.real if np.isrealobj(u) else out


def poisson_solve(f: np.ndarray) -> np.ndarray:
    """Solve ``laplacian(u) = f`` with zero-mean gauge.

    ``f`` must have (numerically) zero mean — the periodic Poisson
    problem is only solvable then; the returned ``u`` also has zero mean.
    """
    f = np.asarray(f)
    if f.ndim != 3:
        raise ValueError("f must be 3-D")
    spec = fft3d(f.astype(np.complex128, copy=False))
    mean = abs(spec.flat[0]) / f.size
    scale = np.abs(f).max() if f.size else 0.0
    if scale > 0 and mean > 1e-8 * scale:
        raise ValueError(
            "periodic Poisson problem needs a zero-mean right-hand side"
        )
    ksq = _ksq(f.shape)
    ksq.flat[0] = 1.0  # avoid 0/0 at the mean mode; we zero it below
    uhat = spec / (-ksq)
    uhat.flat[0] = 0.0
    u = ifft3d(uhat)
    return u.real if np.isrealobj(f) else u
