"""Pseudo-spectral incompressible Navier-Stokes on the periodic cube.

The full workload class behind the paper's turbulence citation: every
time step is a fixed bundle of 3-D FFTs (the reason DNS codes live or die
by 3-D FFT throughput).  Fourier-Galerkin with 2/3-rule dealiasing,
rotational-form nonlinear term, explicit RK2 (Heun) time stepping and
exact integrating-factor treatment of viscosity.

State is kept spectrally as ``uhat[3, n, n, n]``; each right-hand-side
evaluation costs 3 inverse + 3 forward + 3 inverse transforms of the
vorticity — 9+ grid-sized FFTs, matching the cost model the paper's DNS
argument assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.spectral.poisson import wavenumbers
from repro.fft.fft3d import fft3d, ifft3d

__all__ = ["SpectralNavierStokes", "NSDiagnostics"]


@dataclass(frozen=True)
class NSDiagnostics:
    """Per-step integral diagnostics."""

    time: float
    kinetic_energy: float
    enstrophy: float
    dissipation: float
    max_divergence: float


class SpectralNavierStokes:
    """Incompressible NS integrator on an ``n^3`` periodic grid.

    Parameters
    ----------
    n:
        Grid size per axis (power of two for the fast path; any size the
        host engine accepts works).
    viscosity:
        Kinematic viscosity ``nu > 0``.
    """

    def __init__(self, n: int, viscosity: float = 1e-2):
        if n < 8:
            raise ValueError("n must be >= 8 for a meaningful dealiased grid")
        if viscosity <= 0:
            raise ValueError("viscosity must be positive")
        self.n = n
        self.nu = viscosity
        k = wavenumbers(n)
        self.kz = k[:, None, None]
        self.ky = k[None, :, None]
        self.kx = k[None, None, :]
        self.ksq = self.kz**2 + self.ky**2 + self.kx**2
        self.ksq_safe = np.where(self.ksq > 0, self.ksq, 1.0)
        cutoff = n / 3.0
        self.dealias = (
            (np.abs(self.kz) <= cutoff)
            & (np.abs(self.ky) <= cutoff)
            & (np.abs(self.kx) <= cutoff)
        )
        self.uhat = np.zeros((3, n, n, n), dtype=np.complex128)
        self.time = 0.0
        #: FFTs performed so far (the throughput-relevant counter).
        self.fft_count = 0

    # ------------------------------------------------------------------

    def set_velocity(self, u: np.ndarray) -> None:
        """Initialize from a physical-space field ``(3, n, n, n)``."""
        u = np.asarray(u, dtype=np.float64)
        if u.shape != (3, self.n, self.n, self.n):
            raise ValueError(f"expected (3, {self.n}^3), got {u.shape}")
        for c in range(3):
            self.uhat[c] = fft3d(u[c].astype(np.complex128))
            self.fft_count += 1
        self._project()

    def velocity(self) -> np.ndarray:
        """Physical-space velocity (3 inverse transforms)."""
        u = np.empty((3, self.n, self.n, self.n))
        for c in range(3):
            u[c] = ifft3d(self.uhat[c]).real
            self.fft_count += 1
        return u

    # ------------------------------------------------------------------

    def _project(self) -> None:
        """Leray projection onto divergence-free fields."""
        div = (
            self.kz * self.uhat[0]
            + self.ky * self.uhat[1]
            + self.kx * self.uhat[2]
        )
        self.uhat[0] -= self.kz * div / self.ksq_safe
        self.uhat[1] -= self.ky * div / self.ksq_safe
        self.uhat[2] -= self.kx * div / self.ksq_safe

    def _nonlinear(self, uhat: np.ndarray) -> np.ndarray:
        """Projected, dealiased rotational term ``P(u x omega)``."""
        u = np.empty((3, self.n, self.n, self.n))
        for c in range(3):
            u[c] = ifft3d(uhat[c]).real
            self.fft_count += 1
        # Vorticity omega = curl u, spectrally then to physical space.
        wz_hat = 1j * (self.ky * uhat[2] - self.kx * uhat[1])
        wy_hat = 1j * (self.kx * uhat[0] - self.kz * uhat[2])
        wx_hat = 1j * (self.kz * uhat[1] - self.ky * uhat[0])
        omega = np.empty_like(u)
        for c, what in enumerate((wz_hat, wy_hat, wx_hat)):
            omega[c] = ifft3d(what).real
            self.fft_count += 1
        # u x omega in physical space (component order z, y, x).
        cross = np.empty_like(u)
        cross[0] = u[1] * omega[2] - u[2] * omega[1]
        cross[1] = u[2] * omega[0] - u[0] * omega[2]
        cross[2] = u[0] * omega[1] - u[1] * omega[0]
        out = np.empty_like(uhat)
        for c in range(3):
            out[c] = fft3d(cross[c].astype(np.complex128)) * self.dealias
            self.fft_count += 1
        # Project out the pressure-gradient part.
        div = self.kz * out[0] + self.ky * out[1] + self.kx * out[2]
        out[0] -= self.kz * div / self.ksq_safe
        out[1] -= self.ky * div / self.ksq_safe
        out[2] -= self.kx * div / self.ksq_safe
        return out

    def step(self, dt: float) -> None:
        """One Heun (RK2) step with integrating-factor viscosity."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        decay = np.exp(-self.nu * self.ksq * dt)
        n1 = self._nonlinear(self.uhat)
        predictor = (self.uhat + dt * n1) * decay
        n2 = self._nonlinear(predictor)
        self.uhat = self.uhat * decay + 0.5 * dt * (n1 * decay + n2)
        self.uhat *= self.dealias
        self._project()
        self.time += dt

    # ------------------------------------------------------------------

    def diagnostics(self) -> NSDiagnostics:
        """Integral quantities from the spectral state (no extra FFTs)."""
        norm = self.n**3
        e_dens = 0.5 * np.sum(np.abs(self.uhat) ** 2, axis=0) / norm**2
        energy = float(np.sum(e_dens))
        enstrophy = float(np.sum(self.ksq * e_dens))
        div = (
            self.kz * self.uhat[0]
            + self.ky * self.uhat[1]
            + self.kx * self.uhat[2]
        )
        scale = np.abs(self.uhat).max()
        max_div = float(np.abs(div).max() / scale) if scale > 0 else 0.0
        return NSDiagnostics(
            time=self.time,
            kinetic_energy=energy,
            enstrophy=enstrophy,
            dissipation=2.0 * self.nu * enstrophy,
            max_divergence=max_div,
        )
