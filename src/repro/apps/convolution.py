"""FFT-based 3-D convolution and correlation.

The workhorse of both the docking application ("its kernel computation is
3-D convolution based on 3-D FFT", Section 4.4) and density-map smoothing
in structural biology.  Circular (periodic) by default — that is what one
FFT pair gives and what ZDOCK-style grid scoring uses; zero-padded linear
convolution is available via ``pad=True``.
"""

from __future__ import annotations

import numpy as np

from repro.fft.fft3d import fft3d, ifft3d

__all__ = ["fft_convolve", "fft_correlate", "gaussian_kernel", "gaussian_smooth"]


def _transform_pair(a: np.ndarray, b: np.ndarray, pad: bool):
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("inputs must be 3-D")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if pad:
        shape = tuple(2 * n for n in a.shape)
        ap = np.zeros(shape, dtype=np.complex128)
        bp = np.zeros(shape, dtype=np.complex128)
        ap[: a.shape[0], : a.shape[1], : a.shape[2]] = a
        bp[: b.shape[0], : b.shape[1], : b.shape[2]] = b
        a, b = ap, bp
    return fft3d(a), fft3d(b), a.shape


def fft_convolve(a: np.ndarray, b: np.ndarray, pad: bool = False) -> np.ndarray:
    """Circular convolution ``(a * b)[t] = sum_x a[x] b[t - x]``.

    With ``pad=True`` the inputs are zero-padded to double size, which
    makes the result a linear convolution restricted back to the original
    grid.
    """
    fa, fb, shape = _transform_pair(a, b, pad)
    out = ifft3d(fa * fb)
    if pad:
        orig = tuple(n // 2 for n in shape)
        out = out[: orig[0], : orig[1], : orig[2]]
    return out


def fft_correlate(a: np.ndarray, b: np.ndarray, pad: bool = False) -> np.ndarray:
    """Circular cross-correlation ``c[t] = sum_x a[x] conj(b[x - t])``.

    ``c[t]`` scores the overlap of ``b`` translated by ``t`` against
    ``a`` — the docking search evaluates all ``N^3`` translations in one
    call.
    """
    fa, fb, shape = _transform_pair(a, b, pad)
    out = ifft3d(fa * np.conj(fb))
    if pad:
        orig = tuple(n // 2 for n in shape)
        out = out[: orig[0], : orig[1], : orig[2]]
    return out


def gaussian_kernel(shape: tuple[int, int, int], sigma: float) -> np.ndarray:
    """Periodic 3-D Gaussian, unit mass, centered at the origin cell.

    Distances wrap (minimum-image), so the kernel is usable directly in
    circular convolution.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    axes = []
    for n in shape:
        k = np.arange(n, dtype=np.float64)
        k = np.minimum(k, n - k)  # wrapped distance
        axes.append(np.exp(-0.5 * (k / sigma) ** 2))
    kern = axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]
    return kern / kern.sum()


def gaussian_smooth(density: np.ndarray, sigma: float) -> np.ndarray:
    """Smooth a real 3-D density map with a periodic Gaussian.

    The cryo-EM/nano-science style use the paper's introduction points at
    ("applicable to many areas especially nano-science and life science").
    """
    density = np.asarray(density, dtype=np.float64)
    if density.ndim != 3:
        raise ValueError("density must be 3-D")
    kern = gaussian_kernel(density.shape, sigma)
    return fft_convolve(density, kern).real
