"""Volumetric image restoration: FFT Wiener deconvolution.

The paper's introduction points at "nano-science and life science" as the
consumers of on-card 3-D FFTs; the concrete workload there is restoring
blurred volumetric data (cryo-EM density maps, confocal stacks).  Wiener
deconvolution is the classic linear restorer: with a known point-spread
function ``h`` and noise-to-signal power ratio ``nsr``::

    estimate_hat = conj(H) / (|H|^2 + nsr) * Y

— three 3-D FFTs per restoration, all card-resident in the paper's
deployment model.
"""

from __future__ import annotations

import numpy as np

from repro.apps.convolution import fft_convolve, gaussian_kernel
from repro.fft.fft3d import fft3d, ifft3d

__all__ = ["blur_volume", "wiener_deconvolve", "restoration_gain"]


def blur_volume(
    volume: np.ndarray,
    sigma: float,
    noise_rms: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Forward model: periodic Gaussian blur plus white noise."""
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError("volume must be 3-D")
    psf = gaussian_kernel(volume.shape, sigma)
    blurred = fft_convolve(volume, psf).real
    if noise_rms > 0:
        rng = np.random.default_rng(seed)
        blurred = blurred + noise_rms * rng.standard_normal(volume.shape)
    return blurred


def wiener_deconvolve(
    observed: np.ndarray, sigma: float, nsr: float = 1e-3
) -> np.ndarray:
    """Wiener-restore a Gaussian-blurred periodic volume.

    ``nsr`` is the noise-to-signal power ratio regularizer; ``nsr -> 0``
    approaches naive inverse filtering (exact for noise-free data, wildly
    noise-amplifying otherwise).
    """
    observed = np.asarray(observed, dtype=np.float64)
    if observed.ndim != 3:
        raise ValueError("observed must be 3-D")
    if nsr < 0:
        raise ValueError("nsr must be non-negative")
    psf = gaussian_kernel(observed.shape, sigma)
    h = fft3d(psf)
    y = fft3d(observed)
    filt = np.conj(h) / (np.abs(h) ** 2 + nsr)
    return ifft3d(filt * y).real


def restoration_gain(
    truth: np.ndarray, observed: np.ndarray, restored: np.ndarray
) -> float:
    """Improvement in RMS error: ``rms(observed-truth)/rms(restored-truth)``.

    > 1 means the deconvolution helped.
    """
    truth = np.asarray(truth, dtype=np.float64)
    before = np.sqrt(np.mean((observed - truth) ** 2))
    after = np.sqrt(np.mean((restored - truth) ** 2))
    if after == 0:
        return np.inf
    return float(before / after)
