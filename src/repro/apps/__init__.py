"""Applications driving the 3-D FFT kernel.

* :mod:`repro.apps.docking` — ZDOCK-style protein-protein docking by FFT
  correlation (the paper's Section 4.4 application: rotations/translations
  scored on-card, eliminating per-FFT PCIe transfers);
* :mod:`repro.apps.spectral` — spectral PDE solvers (Poisson) and
  turbulence diagnostics (the paper cites the Earth Simulator turbulence
  DNS as the canonical 3-D FFT consumer);
* :mod:`repro.apps.convolution` — generic FFT convolution/correlation and
  Gaussian density-map smoothing.
"""

from repro.apps.imaging import blur_volume, restoration_gain, wiener_deconvolve
from repro.apps.convolution import (
    fft_convolve,
    fft_correlate,
    gaussian_kernel,
    gaussian_smooth,
)
from repro.apps.docking import (
    DockingResult,
    DockingSearch,
    SyntheticProtein,
    random_protein,
    rotation_grid,
    score_grids,
)
from repro.apps.spectral import (
    poisson_solve,
    spectral_laplacian,
    energy_spectrum,
    random_solenoidal_field,
    taylor_green_field,
)

__all__ = [
    "blur_volume",
    "restoration_gain",
    "wiener_deconvolve",
    "fft_convolve",
    "fft_correlate",
    "gaussian_kernel",
    "gaussian_smooth",
    "DockingResult",
    "DockingSearch",
    "SyntheticProtein",
    "random_protein",
    "rotation_grid",
    "score_grids",
    "poisson_solve",
    "spectral_laplacian",
    "energy_spectrum",
    "random_solenoidal_field",
    "taylor_green_field",
]
