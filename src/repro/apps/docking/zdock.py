"""Rotation/translation docking search on the (simulated) GPU.

For each sampled rotation of the ligand: voxelize, transform, multiply
against the cached receptor spectrum, inverse-transform, peak-search —
the paper's "calculate scores for all the translations at once".  All
per-rotation FFT work is charged to the device simulator, and the result
records both the on-card time and what the same search would cost if
every transform round-tripped over PCIe (Section 4.4's argument made
quantitative).

:meth:`DockingSearch.run_batched` is the scaling path: rotations are
scored in batches through one shared
:class:`~repro.core.batch.BatchedGpuFFT3D` pipeline (ZDOCK-style
workloads score thousands of rotations, all on the same grid shape), so
plan construction is paid once and each rotation's PCIe staging overlaps
its neighbours' kernels on the simulated timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.apps.docking.scoring import grid_ligand, grid_receptor
from repro.apps.docking.shapes import SyntheticProtein, rotation_grid
from repro.core.batch import BatchedGpuFFT3D
from repro.core.estimator import estimate_fft3d
from repro.fft.fft3d import fft3d, ifft3d
from repro.gpu.pcie import link_for
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.profiler import Profiler

__all__ = ["DockingPose", "DockingResult", "DockingSearch"]


@dataclass(frozen=True)
class DockingPose:
    """One candidate pose: rotation index, cyclic translation, score."""

    rotation_index: int
    translation: tuple[int, int, int]
    score: float


@dataclass(frozen=True)
class DockingResult:
    """Search output plus the simulated-time accounting."""

    poses: tuple[DockingPose, ...]
    n_rotations: int
    grid_size: int
    #: Simulated seconds with the working set resident on the card.
    on_card_seconds: float
    #: Simulated seconds if each FFT round-tripped host<->device.
    offload_seconds: float
    #: Simulated seconds of the batched run (streamed round-trips
    #: overlapped with kernels); ``None`` for the analytic :meth:`run`.
    pipelined_seconds: float | None = None

    @property
    def best(self) -> DockingPose:
        return self.poses[0]

    @property
    def on_card_speedup(self) -> float:
        """How much the paper's "confine the kernel to the card" buys."""
        return self.offload_seconds / self.on_card_seconds

    @property
    def pipeline_speedup(self) -> float:
        """Serialized offload over the overlapped batch pipeline."""
        if self.pipelined_seconds is None:
            raise ValueError("search was not run through the batched pipeline")
        return self.offload_seconds / self.pipelined_seconds


class DockingSearch:
    """PSC docking of a ligand against a receptor on a simulated GPU."""

    def __init__(
        self,
        receptor: SyntheticProtein,
        ligand: SyntheticProtein,
        grid_size: int = 64,
        spacing: float = 1.0,
        device: DeviceSpec = GEFORCE_8800_GTX,
    ):
        self.receptor = receptor
        self.ligand = ligand
        self.n = grid_size
        self.spacing = spacing
        self.device = device
        self._receptor_spectrum = fft3d(
            grid_receptor(receptor, grid_size, spacing)
        )
        self._fft_estimate = estimate_fft3d(device, grid_size)

    def _score_rotation(self, rotation: np.ndarray) -> np.ndarray:
        lig = grid_ligand(self.ligand.rotated(rotation), self.n, self.spacing)
        # score[t] = Re sum_x R(x) L(x - t)
        #          = Re IFFT( FFT(R) * conj(FFT(conj(L))) )
        spec = fft3d(np.conj(lig))
        return ifft3d(self._receptor_spectrum * np.conj(spec)).real

    @staticmethod
    def _check_rotations(rotations) -> np.ndarray:
        if rotations is None:
            rotations = rotation_grid()
        rotations = np.asarray(rotations, dtype=np.float64)
        if rotations.ndim != 3 or rotations.shape[1:] != (3, 3):
            raise ValueError("rotations must have shape (R, 3, 3)")
        return rotations

    @staticmethod
    def _top_poses(scores: np.ndarray, ri: int, top_k: int) -> list[DockingPose]:
        flat = np.argsort(scores, axis=None)[::-1][:top_k]
        poses = []
        for idx in flat:
            t = np.unravel_index(idx, scores.shape)
            poses.append(
                DockingPose(ri, tuple(int(v) for v in t), float(scores[t]))
            )
        return poses

    def _analytic_seconds(self, n_rot: int) -> tuple[float, float]:
        """(on-card, serialized-offload) simulated seconds for the search."""
        per_fft = self._fft_estimate.on_board_seconds
        on_card = (1 + 2 * n_rot) * per_fft
        link = link_for(self.device.pcie)
        grid_bytes = self.n ** 3 * 8
        per_roundtrip = link.transfer_time(grid_bytes, "h2d") + link.transfer_time(
            grid_bytes, "d2h"
        )
        return on_card, on_card + (1 + 2 * n_rot) * per_roundtrip

    def run(
        self,
        rotations: np.ndarray | None = None,
        top_k: int = 10,
        profiler: Profiler | None = None,
    ) -> DockingResult:
        """Search all rotations; return the ``top_k`` poses by score.

        The analytic path has no device simulator, so a profiler gets
        summary metrics (rotation count, on-card vs offload seconds) and
        one synthetic span covering the modeled on-card search.
        """
        rotations = self._check_rotations(rotations)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")

        poses: list[DockingPose] = []
        for ri, rot in enumerate(rotations):
            scores = self._score_rotation(rot)
            poses.extend(self._top_poses(scores, ri, top_k))
        poses.sort(key=lambda p: p.score, reverse=True)

        # Time accounting: per rotation, 2 on-card FFTs (ligand forward,
        # product inverse) + one elementwise multiply we fold into them;
        # the receptor spectrum is computed once.
        on_card, offload = self._analytic_seconds(len(rotations))
        if profiler is not None:
            profiler.metrics.counter("docking.rotations", "rotations").inc(
                len(rotations)
            )
            profiler.metrics.gauge("docking.on_card.seconds", "s").set(on_card)
            profiler.metrics.gauge("docking.offload.seconds", "s").set(offload)
            profiler.tracer.emit(
                "kernel",
                "docking-search",
                0.0,
                on_card,
                plan="docking",
                rotations=len(rotations),
            )
        return DockingResult(
            poses=tuple(poses[:top_k]),
            n_rotations=len(rotations),
            grid_size=self.n,
            on_card_seconds=on_card,
            offload_seconds=offload,
        )

    def run_batched(
        self,
        rotations: np.ndarray | None = None,
        top_k: int = 10,
        batch_size: int = 8,
        n_streams: int = 3,
        profiler: Profiler | None = None,
    ) -> DockingResult:
        """Score rotations in pipelined batches through one shared plan.

        Functionally equivalent to :meth:`run` (up to single precision);
        every ligand forward transform and score inverse transform runs
        through a :class:`~repro.core.batch.BatchedGpuFFT3D`, so each
        rotation's PCIe staging overlaps its neighbours' kernels and
        ``pipelined_seconds`` carries the simulated makespan of the
        streamed search.

        Pass a :class:`repro.obs.Profiler` to capture the whole search as
        an annotated trace (one span per staged transfer and kernel,
        tagged with the engine's plan id and batch entry) plus docking
        counters — the search loop itself is unchanged.
        """
        rotations = self._check_rotations(rotations)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")

        n = self.n
        poses: list[DockingPose] = []
        with BatchedGpuFFT3D(
            (n, n, n), device=self.device, n_streams=n_streams,
            profiler=profiler,
        ) as engine:
            for start in range(0, len(rotations), batch_size):
                chunk = rotations[start : start + batch_size]
                ligs = np.stack(
                    [
                        np.conj(
                            grid_ligand(self.ligand.rotated(r), n, self.spacing)
                        )
                        for r in chunk
                    ]
                )
                specs = engine.forward(ligs)
                products = self._receptor_spectrum[None] * np.conj(specs)
                score_grids = engine.inverse(products).real
                for k in range(len(chunk)):
                    poses.extend(self._top_poses(score_grids[k], start + k, top_k))
            pipelined = engine.simulator.elapsed
        poses.sort(key=lambda p: p.score, reverse=True)

        on_card, offload = self._analytic_seconds(len(rotations))
        if profiler is not None:
            profiler.metrics.counter("docking.rotations", "rotations").inc(
                len(rotations)
            )
            profiler.metrics.gauge("docking.pipelined.seconds", "s").set(pipelined)
            profiler.metrics.gauge("docking.offload.seconds", "s").set(offload)
        return DockingResult(
            poses=tuple(poses[:top_k]),
            n_rotations=len(rotations),
            grid_size=self.n,
            on_card_seconds=on_card,
            offload_seconds=offload,
            pipelined_seconds=pipelined,
        )
