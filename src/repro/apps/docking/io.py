"""I/O for the docking application: minimal PDB and pose files.

Real docking pipelines live on files — receptor/ligand structures in and
ranked poses out.  Synthetic proteins round-trip through a minimal PDB
subset (``ATOM`` records, carbon pseudo-atoms) so the example workload is
inspectable in any molecular viewer, and results persist as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.apps.docking.shapes import SyntheticProtein
from repro.apps.docking.zdock import DockingPose, DockingResult

__all__ = ["save_pdb", "load_pdb", "save_poses", "load_poses"]


def save_pdb(protein: SyntheticProtein, path: str | Path, name: str = "SYN") -> Path:
    """Write atoms as PDB ``ATOM`` records (carbon pseudo-atoms)."""
    path = Path(path)
    lines = [f"HEADER    SYNTHETIC PROTEIN {name[:10]:<10}"]
    lines.append(f"REMARK   1 RADIUS {protein.radius:.3f}")
    for i, (x, y, z) in enumerate(protein.atoms, start=1):
        lines.append(
            f"ATOM  {i:5d}  C   GLY A{i:4d}    "
            f"{x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00           C"
        )
    lines.append("END")
    path.write_text("\n".join(lines) + "\n")
    return path


def load_pdb(path: str | Path) -> SyntheticProtein:
    """Read a PDB written by :func:`save_pdb` (or any ATOM-record file).

    The radius comes from the ``REMARK 1 RADIUS`` line when present,
    defaulting to 1.8 (a carbon van der Waals radius).
    """
    path = Path(path)
    atoms = []
    radius = 1.8
    for line in path.read_text().splitlines():
        if line.startswith("REMARK   1 RADIUS"):
            radius = float(line.split()[-1])
        elif line.startswith(("ATOM", "HETATM")):
            atoms.append(
                (float(line[30:38]), float(line[38:46]), float(line[46:54]))
            )
    if not atoms:
        raise ValueError(f"{path} contains no ATOM records")
    return SyntheticProtein(np.asarray(atoms, dtype=np.float64), radius)


def save_poses(result: DockingResult, path: str | Path) -> Path:
    """Persist a docking result (poses + accounting) as JSON."""
    path = Path(path)
    doc = {
        "n_rotations": result.n_rotations,
        "grid_size": result.grid_size,
        "on_card_seconds": result.on_card_seconds,
        "offload_seconds": result.offload_seconds,
        "poses": [
            {
                "rotation_index": p.rotation_index,
                "translation": list(p.translation),
                "score": p.score,
            }
            for p in result.poses
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_poses(path: str | Path) -> DockingResult:
    """Load a docking result written by :func:`save_poses`."""
    doc = json.loads(Path(path).read_text())
    poses = tuple(
        DockingPose(
            rotation_index=int(p["rotation_index"]),
            translation=tuple(int(v) for v in p["translation"]),
            score=float(p["score"]),
        )
        for p in doc["poses"]
    )
    return DockingResult(
        poses=poses,
        n_rotations=int(doc["n_rotations"]),
        grid_size=int(doc["grid_size"]),
        on_card_seconds=float(doc["on_card_seconds"]),
        offload_seconds=float(doc["offload_seconds"]),
    )
