"""Greedy pose clustering (the post-processing every docking code runs).

Raw FFT scoring returns thousands of near-duplicate poses around each
contact patch; ZDOCK-style pipelines greedily cluster them: take the
best-scoring pose, absorb every pose within a translation radius (on the
periodic grid) under the same rotation neighborhood, repeat.  The cluster
representatives are the reported predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.docking.zdock import DockingPose

__all__ = ["PoseCluster", "cluster_poses"]


@dataclass(frozen=True)
class PoseCluster:
    """One cluster: its best pose and the poses it absorbed."""

    representative: DockingPose
    members: tuple[DockingPose, ...]

    @property
    def size(self) -> int:
        return len(self.members)


def _periodic_distance(
    a: tuple[int, int, int], b: tuple[int, int, int], n: int
) -> float:
    """Euclidean distance between translations on the periodic grid."""
    d = 0.0
    for x, y in zip(a, b):
        delta = abs(x - y)
        delta = min(delta, n - delta)
        d += delta * delta
    return float(np.sqrt(d))


def cluster_poses(
    poses,
    grid_size: int,
    radius: float = 3.0,
    same_rotation_only: bool = False,
    max_clusters: int | None = None,
) -> list[PoseCluster]:
    """Greedy clustering of scored poses.

    Parameters
    ----------
    poses:
        Iterable of :class:`DockingPose`, any order.
    grid_size:
        Grid extent (for periodic translation distance).
    radius:
        Poses within this many cells of a representative join its cluster.
    same_rotation_only:
        If True, only poses sharing the representative's rotation index
        can join (stricter, like rotation-binned clustering).
    max_clusters:
        Stop after this many clusters (None = exhaust all poses).
    """
    if grid_size <= 0:
        raise ValueError("grid_size must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    remaining = sorted(poses, key=lambda p: p.score, reverse=True)
    clusters: list[PoseCluster] = []
    while remaining:
        if max_clusters is not None and len(clusters) >= max_clusters:
            break
        rep = remaining[0]
        members = []
        rest = []
        for p in remaining:
            close = (
                _periodic_distance(p.translation, rep.translation, grid_size)
                <= radius
            )
            rotation_ok = (
                not same_rotation_only or p.rotation_index == rep.rotation_index
            )
            if close and rotation_ok:
                members.append(p)
            else:
                rest.append(p)
        clusters.append(PoseCluster(representative=rep, members=tuple(members)))
        remaining = rest
    return clusters
