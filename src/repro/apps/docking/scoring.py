"""Pairwise shape-complementarity scoring grids (PSC-style).

The ZDOCK-family encoding: voxelize each molecule, mark *surface* cells
with weight 1 and *core* cells with weight ``9i``.  The correlation
product then rewards surface-surface contact (+1, real) and punishes
core-core interpenetration (``(9i)^2 = -81``, real), while surface-core
terms are imaginary and drop out of the real-part score — one complex
grid encodes both terms, so a single complex 3-D FFT per rotation does
the whole job (exactly why docking is a showcase for the paper's kernel).
"""

from __future__ import annotations

import numpy as np

from repro.apps.convolution import fft_correlate
from repro.apps.docking.shapes import SyntheticProtein
from repro.util.indexing import is_power_of_two

__all__ = [
    "PSC_CORE_WEIGHT",
    "voxelize",
    "surface_and_core",
    "grid_receptor",
    "grid_ligand",
    "score_grids",
]

#: Core-cell weight; core-core overlap scores -PSC_CORE_WEIGHT^2.
PSC_CORE_WEIGHT = 9.0


def voxelize(
    protein: SyntheticProtein, n: int, spacing: float
) -> np.ndarray:
    """Boolean occupancy grid, molecule centered, periodic box of ``n^3``.

    ``spacing`` is grid units per coordinate unit.  Raises if the
    molecule does not fit with a one-cell margin (wrapping a protein
    around the box would silently corrupt scores).
    """
    if not is_power_of_two(n):
        raise ValueError(f"grid size must be a power of two, got {n}")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if 2 * protein.extent() / spacing > n - 2:
        raise ValueError(
            f"protein extent {protein.extent():.1f} does not fit an "
            f"n={n}, spacing={spacing} grid"
        )
    center = np.asarray([n / 2] * 3)
    occupancy = np.zeros((n, n, n), dtype=bool)
    r_cells = protein.radius / spacing
    reach = int(np.ceil(r_cells))
    offsets = np.arange(-reach, reach + 1)
    oz, oy, ox = np.meshgrid(offsets, offsets, offsets, indexing="ij")
    cube = np.stack([oz, oy, ox], axis=-1).reshape(-1, 3)
    for atom in protein.atoms:
        cell = np.round(atom / spacing + center).astype(int)
        pts = cell + cube
        d = np.linalg.norm((atom / spacing + center) - pts, axis=1)
        inside = pts[d <= r_cells] % n
        occupancy[inside[:, 0], inside[:, 1], inside[:, 2]] = True
    return occupancy


def surface_and_core(occupancy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split an occupancy grid into surface and core cells.

    Surface = occupied cells with at least one empty 6-neighbor (periodic
    neighborhood); core = the rest.
    """
    occ = np.asarray(occupancy, dtype=bool)
    eroded = occ.copy()
    for axis in range(3):
        for shift in (1, -1):
            eroded &= np.roll(occ, shift, axis=axis)
    surface = occ & ~eroded
    return surface, eroded


def grid_receptor(
    protein: SyntheticProtein, n: int, spacing: float
) -> np.ndarray:
    """Receptor PSC grid: surface cells 1, core cells ``9i``."""
    occ = voxelize(protein, n, spacing)
    surface, core = surface_and_core(occ)
    grid = np.zeros((n, n, n), dtype=np.complex128)
    grid[surface] = 1.0
    grid[core] = 1j * PSC_CORE_WEIGHT
    return grid


def grid_ligand(
    protein: SyntheticProtein, n: int, spacing: float
) -> np.ndarray:
    """Ligand PSC grid: same encoding as the receptor."""
    return grid_receptor(protein, n, spacing)


def score_grids(receptor: np.ndarray, ligand: np.ndarray) -> np.ndarray:
    """Scores for all cyclic translations of the ligand.

    ``score[t] = Re( sum_x R(x) * L(x - t) )`` — surface-surface contacts
    count +1, core-core clashes count -81.
    """
    receptor = np.asarray(receptor)
    ligand = np.asarray(ligand)
    if receptor.shape != ligand.shape:
        raise ValueError(
            f"grid shapes differ: {receptor.shape} vs {ligand.shape}"
        )
    # fft_correlate computes sum_x a(x) conj(b(x-t)); conjugating the
    # ligand grid turns that into the plain product sum we want.
    return fft_correlate(receptor, np.conj(ligand)).real
