"""ZDOCK-style protein-protein docking via FFT correlation (Section 4.4).

"One of such applications we are working on is ZDock, which simulates
protein-protein docking.  By rotating and translating the Ligand protein,
the best docking positions are determined by scoring scheme.  Its kernel
computation is 3-D convolution based on 3-D FFT to calculate scores for
all the translations at once.  By integrating all such other operations
into the GPU, data transfer is largely eliminated."

Real ZDOCK inputs are PDB structures; we substitute synthetic proteins
(random sphere clusters) that exercise the identical compute pattern —
voxelize, transform, multiply, inverse-transform, peak-search — which is
what the paper's argument is about (see DESIGN.md substitution table).
"""

from repro.apps.docking.shapes import SyntheticProtein, random_protein, rotation_grid
from repro.apps.docking.scoring import (
    PSC_CORE_WEIGHT,
    grid_ligand,
    grid_receptor,
    score_grids,
)
from repro.apps.docking.zdock import DockingPose, DockingResult, DockingSearch
from repro.apps.docking.clustering import PoseCluster, cluster_poses

__all__ = [
    "PoseCluster",
    "cluster_poses",
    "SyntheticProtein",
    "random_protein",
    "rotation_grid",
    "PSC_CORE_WEIGHT",
    "grid_receptor",
    "grid_ligand",
    "score_grids",
    "DockingPose",
    "DockingResult",
    "DockingSearch",
]
