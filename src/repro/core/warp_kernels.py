"""The paper's kernels at thread level, on the warp executor.

Where :mod:`repro.core.kernels` executes whole steps as vectorized NumPy
sweeps (fast, used by the plans), this module writes the same two kernels
the way the CUDA originals are written — one thread at a time — and runs
them on :class:`repro.gpu.exec.WarpExecutor`:

* :func:`multirow_fft16_kernel` — steps 1-4: one 16-point FFT per thread,
  pattern-D burst reads, pattern-A coalesced writes, twiddles "in
  registers" (Python locals);
* :func:`shared_fft_kernel` — step 5: 64 threads cooperate on one
  2^(2s)-point line via four radix-4 stages with three shared-memory
  exchanges, padded, real and imaginary parts exchanged separately.

The executor *observes* the memory behavior, so the test suite can assert
the design claims directly: every half-warp access of the step kernels
coalesces, and the padded exchanges are bank-conflict free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fft.codelets import codelet_fft
from repro.gpu.exec import Dim3, ExecutionReport, GlobalBuffer, SharedBuffer, WarpExecutor
from repro.util.indexing import ilog2

__all__ = [
    "multirow_fft16_kernel",
    "shared_fft_kernel",
    "exchange_word",
    "run_multirow_step",
    "run_shared_x_step",
    "run_five_step_warp_level",
    "WarpStepResult",
]


@dataclass
class WarpStepResult:
    """Output array plus the executor's memory observations."""

    output: np.ndarray
    report: ExecutionReport


# ----------------------------------------------------------------------
# Steps 1-4: coarse-grained 16-point multirow kernel
# ----------------------------------------------------------------------

def multirow_fft16_kernel(ctx, inp, out, params):
    """One 16-point FFT per thread (generator kernel).

    ``params`` carries the five-dimensional geometry in *elements*:

    * ``n_scans``      total (x, non-star) iterations,
    * ``scan_dims`` / ``scan_strides``  the fused loop (x fastest),
    * ``in_star_stride`` / ``out_star_stride``  the burst strides,
    * ``out_scan_strides``  the same digits' strides in the output array,
    * ``radix``  burst length (16),
    * ``twiddle``  optional (radix, radix) inter-factor twiddles — "kept
      in registers", i.e. captured Python values, never re-fetched.
    """
    tid = ctx.global_thread_id()
    total_threads = ctx.gridDim.count * ctx.blockDim.count
    radix = params["radix"]
    twiddle = params.get("twiddle")

    scan = tid
    while scan < params["n_scans"]:
        # Decompose the fused scan index into its digits.
        in_base = 0
        out_base = 0
        rest = scan
        for dim, in_stride, out_stride in zip(
            params["scan_dims"], params["scan_strides"], params["out_scan_strides"]
        ):
            digit = rest % dim
            rest //= dim
            in_base += digit * in_stride
            out_base += digit * out_stride

        # Burst read along the starred axis (pattern D: one load per
        # point, 16 points far apart; the half-warp still coalesces each
        # load across adjacent-x threads).
        values = np.empty(radix, dtype=np.complex128)
        for j in range(radix):
            values[j] = yield ("load", inp, in_base + j * params["in_star_stride"])

        # The butterfly network, entirely in "registers".
        spectrum = codelet_fft(values)
        if twiddle is not None:
            n1 = params["twiddle_digit"](scan)
            spectrum = spectrum * twiddle[:, n1]

        for k in range(radix):
            yield (
                "store",
                out,
                out_base + k * params["out_star_stride"],
                spectrum[k],
            )
        scan += total_threads  # the paper's cyclic loop


def run_multirow_step(
    x5d: np.ndarray,
    in_star_axis: int,
    out_star_position: int,
    twiddle: np.ndarray | None = None,
    grid_blocks: int = 4,
    threads_per_block: int = 64,
) -> WarpStepResult:
    """Run one step-1-style pass at thread level on a 5-D C-order state.

    ``x5d`` has C axes ``(d0, d1, d2, d3, x)``; the transform runs along
    ``in_star_axis`` (normally 0) and the result lands with the new digit
    at C position ``out_star_position``, matching
    :func:`repro.core.kernels.multirow_half1` / ``multirow_half2``.
    """
    if x5d.ndim != 5:
        raise ValueError("expected a 5-D state")
    if in_star_axis != 0:
        raise ValueError("the paper's kernels always burst over C axis 0")
    radix = x5d.shape[0]
    nx = x5d.shape[4]

    flat = np.ascontiguousarray(x5d).reshape(-1)
    # Element strides of the C-order input.
    in_strides = [int(s // x5d.itemsize) for s in np.ascontiguousarray(x5d).strides]

    # Output shape: star digit moved to out_star_position.
    out_axes = [1, 2, 3]  # remaining C axes of the input, in order
    out_shape_axes = []
    placed = False
    for pos in range(4):
        if pos == out_star_position:
            out_shape_axes.append(0)
            placed = True
        else:
            out_shape_axes.append(out_axes.pop(0))
    if not placed:
        raise ValueError("out_star_position must be 0-3")
    out_shape = tuple(x5d.shape[a] for a in out_shape_axes) + (nx,)
    out_arr = np.zeros(out_shape, dtype=np.complex128)
    out_strides_c = [int(s // out_arr.itemsize) for s in out_arr.strides]
    # Stride of each *input* axis's digit within the output layout.
    out_stride_of_input_axis = {0: out_strides_c[out_shape_axes.index(0)]}
    for a in (1, 2, 3):
        out_stride_of_input_axis[a] = out_strides_c[out_shape_axes.index(a)]

    # Fused scan space: x fastest, then input C axes 3, 2, 1.
    scan_dims = (nx, x5d.shape[3], x5d.shape[2], x5d.shape[1])
    scan_strides = (in_strides[4], in_strides[3], in_strides[2], in_strides[1])
    out_scan_strides = (
        out_strides_c[4],
        out_stride_of_input_axis[3],
        out_stride_of_input_axis[2],
        out_stride_of_input_axis[1],
    )

    def twiddle_digit(scan: int) -> int:
        # n1 is the input's C-axis-1 digit (the fast factor).
        return (scan // (nx * x5d.shape[3] * x5d.shape[2])) % x5d.shape[1]

    params = dict(
        n_scans=int(np.prod(scan_dims)),
        scan_dims=scan_dims,
        scan_strides=scan_strides,
        out_scan_strides=out_scan_strides,
        in_star_stride=in_strides[0],
        out_star_stride=out_stride_of_input_axis[0],
        radix=radix,
        twiddle=twiddle,
        twiddle_digit=twiddle_digit,
    )

    inp = GlobalBuffer(flat.astype(np.complex128), base=0, name="V")
    out = GlobalBuffer(out_arr.reshape(-1), base=flat.nbytes, name="WORK")
    executor = WarpExecutor()
    report = executor.launch(
        multirow_fft16_kernel,
        Dim3(grid_blocks),
        Dim3(threads_per_block),
        inp,
        out,
        params,
    )
    return WarpStepResult(out.data.reshape(out_shape), report)


# ----------------------------------------------------------------------
# Step 5: fine-grained shared-memory kernel
# ----------------------------------------------------------------------

def exchange_word(i: int, n: int, quarter: int) -> int:
    """Padded shared-memory word for logical position ``i`` of an exchange.

    Each exchange serves two access shapes: contiguous 16-element stores
    and gathers of runs of ``quarter/4`` spaced ``quarter``.  A single
    static layout cannot make both conflict-free across all stages, so —
    as production kernels do — each exchange uses its own padded map
    (the paper's "padding technique", per stage):

    * ``quarter >= 16``: insert ``quarter/4`` pad words per ``quarter``
      block (``i + (i//quarter) * (quarter//4)``);
    * ``quarter == 4`` (the final exchange, a 4-wide transpose): a
      column-major layout with stride ``n/4 + 4``.

    Both are injective and give every half-warp access a distinct bank
    (asserted by the executor's bank accounting in the tests).
    """
    if quarter >= 16:
        return i + (i // quarter) * (quarter // 4)
    stride = n // 4 + 4  # ≡ 4 (mod 16) for n >= 64 -> distinct banks
    return (i % 4) * stride + i // 4


def shared_fft_kernel(ctx, data, out, params):
    """Cooperative n-point FFT, one line per block (generator kernel).

    Radix-4 Stockham with ``log4(n) - 1`` shared exchanges; each exchange
    moves real parts first, then imaginary parts, through a per-stage
    padded layout so no bank conflicts occur — the paper's Section 3.2
    recipe, executed literally.
    """
    n = params["n"]
    vpt = params["values_per_thread"]  # n // blockDim.x
    t = ctx.threadIdx.x
    threads = ctx.blockDim.x
    line = ctx.blockIdx.x * n
    shared: SharedBuffer = params["shared"][ctx.flat_block() % len(params["shared"])]
    sign = -2j * math.pi
    padded = params.get("padded", True)

    def word_of(i: int, quarter: int) -> int:
        return exchange_word(i, n, quarter) if padded else i

    # Coalesced load: thread t takes positions t, t+threads, ...
    values = []
    for p in range(vpt):
        v = yield ("load", data, line + t + p * threads)
        values.append(complex(v))

    stages = ilog2(n) // 2
    l = n
    for stage in range(stages):
        quarter = l // 4
        row = t // quarter if quarter else 0
        j = t % quarter if quarter else 0
        # Butterfly: u_q = W_l^{jq} * sum_p v_p * w4^{pq}
        new = []
        for q in range(vpt):
            acc = 0.0 + 0.0j
            for p in range(vpt):
                acc += values[p] * np.exp(sign * p * q / 4.0)
            new.append(acc * np.exp(sign * j * q / l))
        m = n // l  # rows before this stage
        # Output flat positions: (q*m + row) * quarter + j.
        positions = [(q * m + row) * quarter + j for q in range(vpt)]

        if stage < stages - 1:
            # Exchange through shared memory, real then imaginary.
            for part in (0, 1):
                for q in range(vpt):
                    word = new[q].real if part == 0 else new[q].imag
                    yield (
                        "shared_store",
                        shared,
                        word_of(positions[q], quarter),
                        word,
                    )
                yield ("sync",)
                # Re-gather with next-stage ownership: l' = quarter,
                # quarter' = quarter/4, row' = t // quarter', j' = t mod
                # quarter'; position = row'*l' + j' + p*quarter'.
                next_quarter = quarter // 4
                nrow = t // next_quarter
                nj = t % next_quarter
                for p in range(vpt):
                    src = nrow * quarter + nj + p * next_quarter
                    word = yield (
                        "shared_load",
                        shared,
                        word_of(src, quarter),
                    )
                    if part == 0:
                        values[p] = complex(word, 0.0)
                    else:
                        values[p] = complex(values[p].real, word)
                yield ("sync",)
        else:
            # Final stage: positions are q*64 + t style -> coalesced store.
            for q in range(vpt):
                yield ("store", out, line + positions[q], new[q])
        l = quarter


def run_shared_x_step(
    lines: np.ndarray,
    threads_per_block: int = 64,
    padded: bool = True,
) -> WarpStepResult:
    """Transform each row of ``lines`` with the cooperative kernel.

    ``lines`` has shape ``(batch, n)`` with ``n = 4 * threads_per_block``
    (the paper's 256-point / 64-thread configuration and its smaller
    tailorings).
    """
    lines = np.ascontiguousarray(lines, dtype=np.complex128)
    if lines.ndim != 2:
        raise ValueError("expected (batch, n) lines")
    batch, n = lines.shape
    if n != 4 * threads_per_block:
        raise ValueError(
            f"n = {n} must be 4 * threads_per_block = {4 * threads_per_block}"
        )
    if ilog2(n) % 2 != 0:
        raise ValueError("the radix-4 kernel needs a power-of-4 size")

    data = GlobalBuffer(lines.reshape(-1), base=0, name="X")
    out = GlobalBuffer(np.zeros(batch * n, np.complex128), base=lines.nbytes,
                       name="Xout")
    shared = [SharedBuffer(2 * n, "exchange")]  # covers every padded map
    params = dict(n=n, values_per_thread=4, shared=shared, padded=padded)
    executor = WarpExecutor()
    report = executor.launch(
        shared_fft_kernel, Dim3(batch), Dim3(threads_per_block), data, out, params
    )
    return WarpStepResult(out.data.reshape(batch, n), report)


# ----------------------------------------------------------------------
# End-to-end: the whole five-step transform at thread level
# ----------------------------------------------------------------------

def run_five_step_warp_level(
    x: np.ndarray, collect_reports: bool = False
) -> WarpStepResult:
    """Full 3-D transform with every step executed thread by thread.

    The most literal reproduction in the package: the same five kernels a
    CUDA device would launch, run on the warp executor, chained through
    the same intermediate layouts as :class:`repro.core.five_step.
    FiveStepPlan`.  Tractable for small grids (the executor is a Python
    interpreter per thread); the vectorized plan covers production sizes.

    ``x`` has shape ``(nz, ny, nx)`` with ``nz``/``ny`` squares of a
    codelet factor and ``nx`` a power of 4 with ``nx >= 64``.
    """
    from repro.core.five_step import split_axis
    from repro.fft.twiddle import four_step_twiddles

    x = np.ascontiguousarray(x, dtype=np.complex128)
    if x.ndim != 3:
        raise ValueError("expected a 3-D grid")
    nz, ny, nx = x.shape
    rz1, rz2 = split_axis(nz)
    ry1, ry2 = split_axis(ny)

    reports = []
    state = x.reshape(rz2, rz1, ry2, ry1, nx)
    # Step 1: transform z2, twiddle, land at C position 3 (pattern A).
    res = run_multirow_step(state, 0, 3, twiddle=four_step_twiddles(rz1, rz2))
    reports.append(res.report)
    # Step 2: transform z1, land at C position 2 (pattern B).
    res = run_multirow_step(res.output, 0, 2)
    reports.append(res.report)
    # Step 3: transform y2, twiddle, pattern A.
    res = run_multirow_step(res.output, 0, 3,
                            twiddle=four_step_twiddles(ry1, ry2))
    reports.append(res.report)
    # Step 4: transform y1, pattern B.
    res = run_multirow_step(res.output, 0, 2)
    reports.append(res.report)
    # Step 5: X lines through the shared-memory kernel.
    lines = res.output.reshape(-1, nx)
    res5 = run_shared_x_step(lines, threads_per_block=nx // 4)
    reports.append(res5.report)

    out = res5.output.reshape(rz1, rz2, ry1, ry2, nx).reshape(nz, ny, nx)
    combined = ExecutionReport()
    for r in reports:
        combined.n_threads += r.n_threads
        combined.rounds += r.rounds
        combined.global_loads += r.global_loads
        combined.global_stores += r.global_stores
        combined.coalesced_half_warps += r.coalesced_half_warps
        combined.serialized_half_warps += r.serialized_half_warps
        combined.global_transactions += r.global_transactions
        combined.shared_accesses += r.shared_accesses
        combined.bank_conflict_cycles += r.bank_conflict_cycles
        combined.syncs += r.syncs
    return WarpStepResult(out, combined)
