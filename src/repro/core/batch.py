"""Batched, stream-pipelined execution of same-shape 3-D transforms.

One :class:`~repro.core.api.GpuFFT3D` transform serializes three phases
on the simulated clock: upload, five kernels, download.  A workload that
runs *many* same-shape transforms (a docking search scores one ligand
grid per rotation; a multi-GPU rank drains a queue of slabs) can overlap
them instead — the paper's Section 4.4 observation ("the latest devices
support asynchronous transfers") applied batch-wide:

    H2D(i+1)  ||  kernels(i)  ||  D2H(i-1)

:class:`BatchedGpuFFT3D` drives that pipeline through the simulator's
stream/engine model (:mod:`repro.gpu.simulator`): each of ``n_streams``
buffer slots owns a numbered stream; entry ``i`` runs on slot ``i %
n_streams``, so the stream order enforces the buffer-reuse hazard (entry
``i`` cannot upload before entry ``i - n_streams`` finished downloading)
while the three engines overlap across streams.  With the default three
slots the steady-state cost per cube is the *largest* of the three phase
times instead of their sum.

The plan itself is shared: construction goes through the process-wide
:data:`~repro.core.plan_cache.PLAN_CACHE`, so a thousand-rotation search
pays for twiddle tables and kernel specs exactly once.

Faults are first-class and *entry-scoped*: transfers are checksummed and
retried, rejected launches retried with backoff, ECC upsets caught by the
Parseval check and retried, and an unrecoverable fault degrades only the
afflicted entry to the host transform — entries ``i±1`` keep their
pipelined results.  Device loss resets the card, re-allocates the slots
and resumes with the first unfinished entry (completed entries live in
host memory and are unaffected).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING

import numpy as np

from repro.core.out_of_core import OutOfCorePlan
from repro.core.plan_cache import PLAN_CACHE
from repro.core.workspace import Workspace
from repro.core.resilient import (
    ResilienceReport,
    ResilientExecutor,
    RetryPolicy,
    checksum,
    energy_preserved,
)
from repro.fft.normalization import apply_norm
from repro.fft.plan import PlanND
from repro.gpu.faults import (
    AllocationError,
    CorruptionError,
    DeviceLostError,
    FaultError,
    FaultInjector,
    KernelLaunchError,
    TransferError,
)
from repro.gpu.simulator import DeviceArray, DeviceMemoryError, DeviceSimulator
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.util.units import flops_3d_fft
from repro.util.validation import as_complex_array

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.profiler import Profiler

__all__ = ["BatchedGpuFFT3D", "gpu_fft3d_batch"]

#: Monotonic ids so slot buffer names never collide across batch engines
#: sharing one simulator.
_BATCH_IDS = count()


class _Slot:
    """One pipeline stage: a stream plus its V/WORK device buffers."""

    __slots__ = ("stream", "v", "w")

    def __init__(self, stream: int, v: DeviceArray, w: DeviceArray):
        self.stream = stream
        self.v = v
        self.w = w


class BatchedGpuFFT3D:
    """Run batches of same-shape transforms through one pipelined plan.

    Parameters mirror :class:`~repro.core.api.GpuFFT3D` plus:

    n_streams:
        Pipeline depth — how many entries may be in flight at once (each
        holds a V + WORK buffer pair on the card).  Three suffices to
        keep all three engines busy; the engine shrinks the depth
        automatically if device memory cannot hold that many slots.
    profiler:
        Optional :class:`repro.obs.Profiler` attached to the simulator;
        every pipelined operation is captured as a span tagged with this
        engine's plan id and the batch entry index it belongs to.
    name:
        Optional stable plan id (buffer prefix + trace tag); defaults to
        a process-unique ``batchN``.
    raise_on_device_loss:
        When True a :class:`~repro.gpu.faults.DeviceLostError` propagates
        to the caller (after the engine forgets its dead slots) instead
        of being recovered in-engine by reset-and-resume.  The serving
        layer uses this so a card loss surfaces as a *batch* failure it
        can answer with worker ejection and loss-free re-queueing onto
        surviving cards; standalone callers keep the default in-engine
        recovery.
    backend:
        Hot-path implementation (``"numpy"``/``"numba"``/``"cjit"``/
        ``"auto"``), resolved exactly as in
        :class:`~repro.core.api.GpuFFT3D` — compiled backends degrade
        cleanly to NumPy and never change results beyond the documented
        ulp bound (DESIGN.md §18).

    The batched path is in-core only: grids larger than device memory
    take the out-of-core path via :class:`~repro.core.api.GpuFFT3D`.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        device: DeviceSpec = GEFORCE_8800_GTX,
        simulator: DeviceSimulator | None = None,
        precision: str = "single",
        norm: str = "backward",
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        verify: bool | None = None,
        n_streams: int = 3,
        profiler: Profiler | None = None,
        name: str | None = None,
        pooling: bool = True,
        raise_on_device_loss: bool = False,
        backend: str = "numpy",
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        if n_streams < 1:
            raise ValueError("n_streams must be at least 1")
        ooc = OutOfCorePlan(shape, device, precision=precision)
        if not ooc.fits_in_core:
            raise ValueError(
                f"{ooc.shape} does not fit on {device.name}; the batched "
                "pipeline is in-core only — use GpuFFT3D's out-of-core path"
            )
        self.device = device
        self.precision = precision
        self.norm = norm
        self.shape = ooc.shape
        self.n_streams = n_streams
        self._injector = None
        if simulator is None:
            simulator = DeviceSimulator(device, fault_injector=fault_injector)
        elif fault_injector is not None:
            if simulator.faults is not None and simulator.faults is not fault_injector:
                raise ValueError(
                    "simulator already has a different fault injector; "
                    "plans sharing a simulator must share one injector"
                )
            if simulator.faults is None:
                self._injector = fault_injector
        self.simulator = simulator
        self._plan = PLAN_CACHE.five_step(
            self.shape, precision, device, backend=backend
        )
        self.retry_policy = retry_policy or RetryPolicy()
        self.resilience = ResilienceReport()
        self._executor = ResilientExecutor(
            self.simulator, self.retry_policy, self.resilience
        )
        self._verify = (
            (fault_injector is not None or self.simulator.faults is not None)
            if verify is None
            else verify
        )
        self._buf = name or f"batch{next(_BATCH_IDS)}"
        self.raise_on_device_loss = raise_on_device_loss
        self._slots: list[_Slot] = []
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(self.simulator)
        self.workspace: Workspace | None = None
        if pooling:
            self.workspace = Workspace(
                name=self._buf,
                metrics=profiler.metrics if profiler is not None else None,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_elements(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    @property
    def n_slots(self) -> int:
        """Pipeline depth actually in use (0 before the first batch)."""
        return len(self._slots)

    @property
    def plan_id(self) -> str:
        """The id tagged onto this engine's buffers and trace spans."""
        return self._buf

    def resilience_report(self) -> ResilienceReport:
        """The live resilience account, time fields synced to the simulator."""
        return self.resilience.capture_timeline(self.simulator)

    def pipeline_report(self) -> dict[str, float]:
        """Makespan vs per-engine busy time — how well the overlap worked."""
        busy = self.simulator.engine_busy_seconds()
        busy["elapsed"] = self.simulator.elapsed
        return busy

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def _allocate_retrying(self, name: str) -> DeviceArray:
        dtype = np.complex64 if self.precision == "single" else np.complex128
        last = self.retry_policy.max_attempts - 1
        for attempt in range(self.retry_policy.max_attempts):
            try:
                return self.simulator.allocate(self.shape, dtype, name)
            except AllocationError:
                if attempt == last:
                    raise
                self._executor.backoff(attempt, "alloc")
        raise AssertionError("unreachable")

    def _ensure_slots(self, needed: int | None = None) -> None:
        """Hold enough live slots for ``needed`` in-flight entries.

        The pipeline never needs more slots than batch entries, so a
        singleton batch (a server dispatching an uncoalesced request)
        allocates one V/WORK pair, not ``n_streams`` of them.  Slots left
        over from a deeper earlier batch are kept — they are already
        paid for and the modulo mapping uses whatever depth exists.
        """
        target = self.n_streams if needed is None else min(self.n_streams, needed)
        target = max(target, 1)
        if (
            len(self._slots) >= target
            and all(
                self.simulator.is_allocated(s.v) and self.simulator.is_allocated(s.w)
                for s in self._slots
            )
        ):
            return
        self._drop_slots()
        for j in range(target):
            try:
                v = self._allocate_retrying(f"{self._buf}-s{j}-V")
                w = self._allocate_retrying(f"{self._buf}-s{j}-WORK")
            except DeviceMemoryError:
                if j == 0:
                    raise
                break  # shallower pipeline than asked for, but it runs
            self._slots.append(_Slot(j, v, w))

    def _drop_slots(self) -> None:
        for s in self._slots:
            for arr in (s.v, s.w):
                if self.simulator.is_allocated(arr):
                    self.simulator.free(arr)
        self._slots.clear()

    def close(self) -> None:
        """Free every slot's device buffers; the engine stays reusable."""
        self._drop_slots()

    def __enter__(self) -> "BatchedGpuFFT3D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipelined execution
    # ------------------------------------------------------------------

    def forward(self, xs) -> np.ndarray:
        """Forward-transform every entry; returns the stacked spectra."""
        return self._run(xs, inverse=False)

    def inverse(self, xs) -> np.ndarray:
        """Inverse-transform every entry; matches ``ifftn`` per entry."""
        return self._run(xs, inverse=True)

    def execute(
        self, xs, inverse: bool = False, force_host: bool = False
    ) -> np.ndarray:
        """Transform a batch in either direction.

        ``force_host=True`` runs every entry on the host reference path
        (charged as host time, no device operations at all) — the
        guaranteed-progress degradation a server takes when every card
        is ejected.  Results stay correct; the downgrades are recorded
        in :attr:`resilience`.
        """
        return self._run(xs, inverse=inverse, force_host=force_host)

    def _coerce_batch(self, xs) -> list[np.ndarray]:
        if isinstance(xs, np.ndarray) and xs.ndim == 4:
            entries = [xs[i] for i in range(xs.shape[0])]
        else:
            entries = list(xs)
        out = []
        for i, x in enumerate(entries):
            x = as_complex_array(x, self.precision)
            if x.shape != self.shape:
                raise ValueError(
                    f"batch entry {i} has shape {x.shape}; plan is for {self.shape}"
                )
            out.append(x)
        return out

    def _run(self, xs, inverse: bool, force_host: bool = False) -> np.ndarray:
        entries = self._coerce_batch(xs)
        dtype = np.complex64 if self.precision == "single" else np.complex128
        if not entries:
            return np.empty((0, *self.shape), dtype)
        # Pooled path: downloads land directly in the stacked result, so
        # the per-entry staging buffer and the np.stack copy both vanish.
        # The block itself is the caller-owned return value — the one
        # allocation the transform loop legitimately makes.
        pooled = self.workspace is not None
        final = np.empty((len(entries), *self.shape), dtype) if pooled else None
        outs: list[np.ndarray] = []
        with self.simulator.annotate(plan=self._buf), self.simulator.fault_scope(
            self._injector
        ):
            resets = 0
            dead = force_host  # device given up on: host path for the rest
            for i, x in enumerate(entries):
                target = final[i] if pooled else None
                with self.simulator.annotate(entry=i):
                    while True:
                        if dead:
                            outs.append(
                                self._host_result(
                                    x,
                                    inverse,
                                    "forced" if force_host else "device lost",
                                    target,
                                )
                            )
                            break
                        try:
                            self._ensure_slots(len(entries))
                            slot = self._slots[i % len(self._slots)]
                            outs.append(
                                self._run_entry(i, x, slot, inverse, target)
                            )
                            break
                        except DeviceLostError:
                            # Only entry i was in flight functionally;
                            # finished entries already live in host memory.
                            self._slots.clear()  # allocations died with card
                            if self.raise_on_device_loss:
                                raise
                            resets += 1
                            self.resilience.device_resets += 1
                            if resets > self.retry_policy.max_device_resets:
                                dead = True
                                continue
                            self.simulator.reset_device()
                        except FaultError as exc:
                            # Retries exhausted for this entry alone:
                            # degrade it, keep the pipeline for neighbours.
                            outs.append(
                                self._host_result(
                                    x, inverse, type(exc).__name__, target
                                )
                            )
                            break
            self.simulator.synchronize()
        n = self.total_elements
        if pooled:
            for o in outs:
                apply_norm(o, n, self.norm, inverse)
            return final
        return np.stack([apply_norm(o, n, self.norm, inverse) for o in outs])

    def _host_result(
        self,
        x: np.ndarray,
        inverse: bool,
        reason: str,
        target: np.ndarray | None,
    ) -> np.ndarray:
        """Host-fallback entry, routed through ``target`` when pooled."""
        out = self._host_entry(x, inverse, reason)
        if target is None:
            return out
        np.copyto(target, out)
        return target

    def _run_entry(
        self,
        i: int,
        x: np.ndarray,
        slot: _Slot,
        inverse: bool,
        target: np.ndarray | None = None,
    ) -> np.ndarray:
        label = f"{self._buf}-e{i}"
        corruption_retries = 0
        while True:
            try:
                self._upload(x, slot, f"{label}-h2d")
                self._compute(x, slot, inverse, label)
                out = np.empty_like(x) if target is None else target
                self._download(slot, out, f"{label}-d2h")
                return out
            except CorruptionError:
                corruption_retries += 1
                if corruption_retries >= self.retry_policy.max_attempts:
                    raise
                self._executor.backoff(corruption_retries - 1, "ecc")

    @staticmethod
    def _as_payload(a: np.ndarray, shape, dtype) -> np.ndarray:
        """The array as the link sees it — no copy when it already matches.

        ``reshape().astype()`` forced a full staging copy whenever the
        input was a non-contiguous view even with a matching dtype; the
        common case (matching shape and dtype) must be free.
        """
        if a.shape == tuple(shape) and a.dtype == dtype:
            return a
        return np.ascontiguousarray(a).reshape(shape).astype(dtype, copy=False)

    def _upload(self, host: np.ndarray, slot: _Slot, label: str) -> None:
        dev = slot.v
        # Checksums only matter when something can corrupt the payload.
        fallible = self.simulator.faults is not None
        expected = (
            checksum(self._as_payload(host, dev.shape, dev.dtype))
            if fallible
            else None
        )
        last = self.retry_policy.max_attempts - 1
        for attempt in range(self.retry_policy.max_attempts):
            self.resilience.attempts += 1
            try:
                self.simulator.async_h2d(host, dev, stream=slot.stream, label=label)
            except TransferError:
                if attempt == last:
                    raise
                self._executor.backoff(attempt, "transfer")
                continue
            if expected is None or checksum(dev.data) == expected:
                return
            self.resilience.checksum_failures += 1
            if attempt == last:
                raise CorruptionError(
                    f"h2d {label!r}: checksum mismatch persisted through "
                    f"{self.retry_policy.max_attempts} attempts"
                )
            self._executor.backoff(attempt, "corruption")
        raise AssertionError("unreachable")

    def _download(self, slot: _Slot, host: np.ndarray, label: str) -> None:
        dev = slot.v
        fallible = self.simulator.faults is not None
        expected = (
            checksum(self._as_payload(dev.data, host.shape, host.dtype))
            if fallible
            else None
        )
        last = self.retry_policy.max_attempts - 1
        for attempt in range(self.retry_policy.max_attempts):
            self.resilience.attempts += 1
            try:
                self.simulator.async_d2h(dev, host, stream=slot.stream, label=label)
            except TransferError:
                if attempt == last:
                    raise
                self._executor.backoff(attempt, "transfer")
                continue
            if expected is None or checksum(host) == expected:
                return
            self.resilience.checksum_failures += 1
            if attempt == last:
                raise CorruptionError(
                    f"d2h {label!r}: checksum mismatch persisted through "
                    f"{self.retry_policy.max_attempts} attempts"
                )
            self._executor.backoff(attempt, "corruption")
        raise AssertionError("unreachable")

    def _launch(self, spec, stream: int, body) -> None:
        last = self.retry_policy.max_attempts - 1
        for attempt in range(self.retry_policy.max_attempts):
            self.resilience.attempts += 1
            try:
                self.simulator.async_launch(spec, stream, body)
                return
            except KernelLaunchError:
                if attempt == last:
                    raise
                self._executor.backoff(attempt, "launch")
        raise AssertionError("unreachable")

    def _compute(
        self, x: np.ndarray, slot: _Slot, inverse: bool, label: str
    ) -> None:
        wall = self._plan.ensure_compiled()
        if wall:
            self.simulator.charge(f"{self._buf}-jit.compile", wall, "host")
        specs = PLAN_CACHE.step_specs(
            self.shape, self.precision, self.device, backend=self._plan.backend
        )
        result: dict[str, np.ndarray] = {}
        ws = self.workspace

        def body() -> None:
            if ws is None:
                result["out"] = self._plan.execute(slot.v.data, inverse=inverse)
            else:
                # In place on the device buffer: the five-step chain only
                # reads its input during step 1, so the spectrum can land
                # where the signal was — no result staging at all.
                result["out"] = self._plan.execute(
                    slot.v.data, inverse=inverse, workspace=ws, out=slot.v.data
                )

        # Five kernels on the slot's stream; the functional work rides the
        # last launch (one pass through the plan), the timing all five.
        for spec in specs[:-1]:
            self._launch(spec, slot.stream, None)
        self._launch(specs[-1], slot.stream, body)
        out = result["out"]
        if self._verify:
            e_in = float(np.vdot(x, x).real)
            e_out = float(np.vdot(out, out).real)
            if not energy_preserved(e_in, e_out, float(self.total_elements)):
                raise CorruptionError(
                    f"batch entry {label!r} violated the energy invariant "
                    "(likely an ECC upset of a device buffer)"
                )
        if out is not slot.v.data:
            np.copyto(slot.v.data, out)

    def _host_entry(self, x: np.ndarray, inverse: bool, reason: str) -> np.ndarray:
        """Degrade one entry to the host transform, charged as host time."""
        self.resilience.downgrades.append(f"host-fallback: {reason}")
        if self.simulator.device_lost:
            self.simulator.reset_device()
            self.resilience.device_resets += 1
            self._slots.clear()
        from repro.baselines.fftw_cpu import FftwCpuBaseline

        rate = FftwCpuBaseline(precision=self.precision).sustained_gflops(self.shape)
        nz, ny, nx = self.shape
        self.simulator.charge(
            f"{self._buf}-host-fallback",
            flops_3d_fft(nx, ny, nz) / (rate * 1e9),
            "host",
        )
        plan = PlanND(self.shape, precision=self.precision)
        if inverse:
            return np.conj(plan.execute(np.conj(x)))
        return plan.execute(x)


def gpu_fft3d_batch(
    xs,
    device: DeviceSpec = GEFORCE_8800_GTX,
    norm: str = "backward",
) -> np.ndarray:
    """One-shot pipelined forward FFT of a batch of same-shape cubes."""
    entries = xs if isinstance(xs, np.ndarray) else np.asarray(xs)
    with BatchedGpuFFT3D(entries.shape[1:], device=device, norm=norm) as plan:
        return plan.forward(entries)
