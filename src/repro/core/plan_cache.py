"""Process-wide plan cache for the five-step transform.

Real FFT workloads (a docking search scoring thousands of rotations, a
spectral solver stepping a fixed grid) build the *same* plan over and
over: identical shape, precision and target device.  Plan construction is
not free — axis splitting, the five intermediate layout views, the
four-step twiddle tables and the per-device kernel specs — so the cache
pays it once per distinct ``(shape, precision, device)`` and hands every
subsequent :class:`~repro.core.api.GpuFFT3D` /
:class:`~repro.core.batch.BatchedGpuFFT3D` the shared, immutable plan.

:class:`~repro.core.five_step.FiveStepPlan` is stateless after
construction (execution reads the memoized twiddle tables and writes only
caller-owned arrays), so sharing one instance across plans — and across
threads, under the cache lock — is safe.  Kernel specs depend on the
device, hence the device name in the key; the functional plan itself is
device-independent, but keying it the same way keeps one cache with one
invalidation story.

The cache is *bounded*: a long-lived process (the :mod:`repro.serve`
front door in particular) sees an open-ended stream of distinct shapes,
so plans are kept in LRU order and the least-recently-requested entry is
evicted once ``max_entries`` is exceeded.  Evictions are counted in
:attr:`PlanCache.stats` and fed to observers (so a
:class:`repro.obs.Profiler` surfaces them as ``plan_cache.evictions``).
"""

from __future__ import annotations

import inspect
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.five_step import FiveStepPlan, resolve_plan_backend
from repro.fft.twiddle import DEFAULT_CACHE
from repro.gpu.kernel import KernelSpec
from repro.gpu.specs import DeviceSpec

__all__ = ["DEFAULT_MAX_ENTRIES", "PlanCacheStats", "PlanCache", "PLAN_CACHE"]

#: Default LRU bound: generous for any realistic shape working set while
#: keeping a shape-churning server from growing the cache without limit.
DEFAULT_MAX_ENTRIES = 128


@dataclass(frozen=True)
class PlanCacheStats:
    """Hit/miss/eviction counters snapshot (misses == plans built).

    ``compiles`` counts backend kernel compilations
    (:meth:`PlanCache.record_compile`); ``by_backend`` labels the
    hit/miss traffic per resolved backend as sorted
    ``(backend, hits, misses)`` triples, so a mixed numpy/jit workload's
    cache behaviour stays attributable.
    """

    hits: int
    misses: int
    evictions: int = 0
    compiles: int = 0
    by_backend: tuple = field(default=(), compare=False)

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def backend(self, name: str) -> tuple[int, int]:
        """``(hits, misses)`` attributed to one resolved backend."""
        for backend, hits, misses in self.by_backend:
            if backend == name:
                return (hits, misses)
        return (0, 0)


def _normalize(shape) -> tuple[int, int, int]:
    if isinstance(shape, int):
        shape = (shape, shape, shape)
    if len(shape) != 3:
        raise ValueError(f"shape must be 3-D, got {shape!r}")
    return tuple(int(n) for n in shape)


class PlanCache:
    """Thread-safe LRU-bounded store for plans and their kernel specs.

    ``max_entries`` bounds the number of distinct ``(shape, precision,
    device)`` plans held at once (``None`` disables eviction); requests
    refresh recency, inserts past the bound evict the stalest entry and
    its kernel specs together.
    """

    def __init__(self, max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self._plans: OrderedDict[tuple, FiveStepPlan] = OrderedDict()
        self._specs: dict[tuple, list[KernelSpec]] = {}
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compiles = 0
        self._by_backend: dict[str, list[int]] = {}
        self._observers: list[Callable[[str], None]] = []
        self._observer_kwargs: set[int] = set()
        self._scope = threading.local()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def current_scope(self) -> str | None:
        """The attribution label in force on this thread (``None`` = global).

        Observers run synchronously on the requesting thread, so they may
        read this to attribute a hit/miss to the cluster node (or other
        scope) whose work triggered it — the fix for the single-process
        assumption in the stats folding: one process-wide cache serving
        many simulated nodes must not fold every node's traffic into one
        unlabeled counter.
        """
        return getattr(self._scope, "label", None)

    @contextmanager
    def scoped(self, label: str) -> Iterator[None]:
        """Attribute this thread's cache traffic to ``label`` while open.

        Scopes nest (the inner label wins) and are strictly thread-local,
        so concurrent nodes driving the shared cache cannot contaminate
        each other's attribution.
        """
        prev = getattr(self._scope, "label", None)
        self._scope.label = label
        try:
            yield
        finally:
            self._scope.label = prev

    def add_observer(self, fn: Callable[[str], None]) -> Callable[[str], None]:
        """Subscribe ``fn`` to plan requests; it receives ``"hits"``/``"misses"``.

        One call per :meth:`five_step` request (the same accounting the
        :attr:`stats` counters keep), made outside the cache lock so the
        observer may consult the cache re-entrantly.  Returns ``fn`` as
        the handle for :meth:`remove_observer`.  This is how a
        :class:`repro.obs.Profiler` keeps live hit/miss counters.

        Observers whose signature accepts keyword arguments additionally
        receive ``backend=`` (the resolved plan backend) on every event
        and ``seconds=`` on ``"compiles"`` events; single-argument
        observers keep the original protocol.
        """
        try:
            inspect.signature(fn).bind("outcome", backend=None, seconds=None)
            wants_kwargs = True
        except TypeError:
            wants_kwargs = False
        with self._lock:
            self._observers.append(fn)
            if wants_kwargs:
                self._observer_kwargs.add(id(fn))
        return fn

    def remove_observer(self, fn: Callable[[str], None]) -> None:
        """Unsubscribe a :meth:`add_observer` handle (idempotent)."""
        with self._lock:
            if fn in self._observers:
                self._observers.remove(fn)
                self._observer_kwargs.discard(id(fn))

    def _notify(self, outcome: str, **info) -> None:
        with self._lock:
            observers = [
                (fn, id(fn) in self._observer_kwargs) for fn in self._observers
            ]
        for fn, wants_kwargs in observers:
            if wants_kwargs:
                fn(outcome, **info)
            else:
                fn(outcome)

    def five_step(
        self, shape, precision: str, device: DeviceSpec, backend: str = "numpy"
    ) -> FiveStepPlan:
        """The shared plan for ``(shape, precision, device, backend)``.

        A miss builds the plan and warms its twiddle tables in the
        process-wide :data:`~repro.fft.twiddle.DEFAULT_CACHE`; a hit
        recomputes neither.  ``backend`` is resolved *before* keying
        (:func:`~repro.core.five_step.resolve_plan_backend`), so
        ``"auto"`` shares the entry of its concrete resolution while a
        numba-keyed plan can never collide with a numpy-keyed one.
        """
        resolved = resolve_plan_backend(shape, backend)
        key = (_normalize(shape), precision, device.name, resolved)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                self._bump_backend(resolved, 0)
                self._plans.move_to_end(key)
            else:
                self._misses += 1
                self._bump_backend(resolved, 1)
        if plan is not None:
            self._notify("hits", backend=resolved)
            return plan
        self._notify("misses", backend=resolved)
        # Build outside the lock (construction touches the twiddle cache,
        # which has its own lock); last writer wins on a racing miss.
        plan = FiveStepPlan(key[0], precision=precision, backend=resolved)
        DEFAULT_CACHE.four_step(plan.rz1, plan.rz2, precision)
        DEFAULT_CACHE.four_step(plan.ry1, plan.ry2, precision)
        with self._lock:
            plan = self._plans.setdefault(key, plan)
            self._plans.move_to_end(key)
            evicted = self._evict_over_bound()
        for backend_name in evicted:
            self._notify("evictions", backend=backend_name)
        return plan

    def _bump_backend(self, backend: str, slot: int) -> None:
        """Count a hit (slot 0) or miss (slot 1) for one backend; caller
        holds the lock."""
        self._by_backend.setdefault(backend, [0, 0])[slot] += 1

    def record_compile(self, backend: str, seconds: float) -> None:
        """Count one backend kernel compilation and notify observers.

        Called by :meth:`FiveStepPlan.ensure_compiled` after a successful
        warm-up so profilers surface ``plan_cache.compiles`` alongside
        the hit/miss feed (with ``backend=``/``seconds=`` detail for
        keyword-aware observers).
        """
        with self._lock:
            self._compiles += 1
        self._notify("compiles", backend=backend, seconds=seconds)

    def _evict_over_bound(self) -> list[str]:
        """Drop LRU entries past ``max_entries``; caller holds the lock.

        Returns the backend of each evicted entry so the caller can
        notify observers (outside the lock) with attribution.
        """
        evicted: list[str] = []
        while self._max_entries is not None and len(self._plans) > self._max_entries:
            stale_key, _ = self._plans.popitem(last=False)
            self._specs.pop(stale_key, None)
            self._evictions += 1
            evicted.append(stale_key[3])
        return evicted

    def step_specs(
        self, shape, precision: str, device: DeviceSpec, backend: str = "numpy"
    ) -> list[KernelSpec]:
        """The plan's five kernel specs, built once per device.

        The specs model the simulated card and are backend-independent,
        but they are keyed alongside their plan so eviction retires both
        together.
        """
        resolved = resolve_plan_backend(shape, backend)
        key = (_normalize(shape), precision, device.name, resolved)
        with self._lock:
            specs = self._specs.get(key)
            if specs is not None:
                return specs
        specs = self.five_step(shape, precision, device, backend).step_specs(
            device
        )
        with self._lock:
            return self._specs.setdefault(key, specs)

    @property
    def stats(self) -> PlanCacheStats:
        with self._lock:
            by_backend = tuple(
                sorted(
                    (name, counts[0], counts[1])
                    for name, counts in self._by_backend.items()
                )
            )
            return PlanCacheStats(
                self._hits,
                self._misses,
                self._evictions,
                self._compiles,
                by_backend,
            )

    @property
    def max_entries(self) -> int | None:
        """The LRU bound currently in force (``None`` = unbounded)."""
        with self._lock:
            return self._max_entries

    def set_max_entries(self, max_entries: int | None) -> None:
        """Re-bound the cache; shrinking evicts stalest entries now."""
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        with self._lock:
            self._max_entries = max_entries
            evicted = self._evict_over_bound()
        for backend_name in evicted:
            self._notify("evictions", backend=backend_name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan and spec list (counters reset too)."""
        with self._lock:
            self._plans.clear()
            self._specs.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._compiles = 0
            self._by_backend.clear()


#: The process-wide cache every GPU plan consults.
PLAN_CACHE = PlanCache()
