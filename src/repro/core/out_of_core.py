"""Out-of-core 3-D FFT for grids larger than device memory (Section 3.3).

A 512^3 single-precision grid needs 1 GB plus work space — more than the
512 MB cards hold.  The paper splits the Z axis by decimation into ``S``
interleaved slabs (S = 8 for 512^3):

    Stage 1 (per slab i):  send the planes z ≡ i (mod S); compute the 3-D
        FFT of the (nz/S, ny, nx) slab on the device; multiply the
        decimation twiddles W_nz^{i*k2}; receive.
    Stage 2 (per plane group): send the S planes holding one k2 across all
        slabs; compute S-point FFTs along the slab axis; receive into
        natural order (plane k2 + (nz/S)*k1).

Data crosses PCIe twice, which dominates the runtime (Table 12) — the
performance is "greatly restricted by its transfer speed".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import estimate_fft3d
from repro.core.five_step import FiveStepPlan
from repro.core.kernels import MULTIROW_REGISTERS, fft_codelet_axis0
from repro.fft.twiddle import DEFAULT_CACHE
from repro.gpu.access import BurstPattern
from repro.gpu.isa import InstructionMix
from repro.gpu.kernel import KernelSpec, MemoryAccessSpec
from repro.gpu.memsystem import MemorySystem
from repro.gpu.pcie import link_for
from repro.gpu.specs import DeviceSpec
from repro.gpu.timing import time_kernel
from repro.util.indexing import ilog2
from repro.util.units import flops_3d_fft
from repro.util.validation import as_complex_array

__all__ = ["OutOfCoreEstimate", "OutOfCorePlan", "estimate_out_of_core"]


@dataclass(frozen=True)
class OutOfCoreEstimate:
    """Predicted phase times of the out-of-core transform (Table 12)."""

    device: str
    shape: tuple[int, int, int]
    n_slabs: int
    stage1_h2d: float
    stage1_fft: float
    stage1_twiddle: float
    stage1_d2h: float
    stage2_h2d: float
    stage2_fft: float
    stage2_d2h: float
    nominal_flops: float

    @property
    def total_seconds(self) -> float:
        return (
            self.stage1_h2d
            + self.stage1_fft
            + self.stage1_twiddle
            + self.stage1_d2h
            + self.stage2_h2d
            + self.stage2_fft
            + self.stage2_d2h
        )

    @property
    def total_gflops(self) -> float:
        return self.nominal_flops / self.total_seconds / 1e9

    @property
    def transfer_seconds(self) -> float:
        return (
            self.stage1_h2d + self.stage1_d2h + self.stage2_h2d + self.stage2_d2h
        )


class OutOfCorePlan:
    """Functional + timed out-of-core transform.

    ``n_slabs`` defaults to the smallest power-of-two split whose two slab
    buffers (data + work) fit in device memory.
    """

    #: Fraction of device memory usable for the two slab buffers (the rest
    #: goes to twiddle tables, CUDA context, display surface).
    USABLE_FRACTION = 0.9

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        device: DeviceSpec,
        n_slabs: int | None = None,
        precision: str = "single",
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        nz, ny, nx = (int(n) for n in shape)
        ilog2(nz)
        self.shape = (nz, ny, nx)
        self.device = device
        self.precision = precision
        el = 8 if precision == "single" else 16
        total = nz * ny * nx * el
        if n_slabs is None:
            budget = device.memory_bytes * self.USABLE_FRACTION
            n_slabs = 1
            while n_slabs < nz and 2 * total / n_slabs > budget:
                n_slabs *= 2
        if nz % n_slabs != 0:
            raise ValueError(f"n_slabs {n_slabs} must divide nz {nz}")
        if n_slabs > 1 and (n_slabs & (n_slabs - 1)) != 0:
            raise ValueError(
                f"slab count {n_slabs} must be a power of two for the "
                "stage-2 FFTs"
            )
        self.n_slabs = n_slabs
        self._el = el

    @property
    def slab_shape(self) -> tuple[int, int, int]:
        nz, ny, nx = self.shape
        return (nz // self.n_slabs, ny, nx)

    @property
    def fits_in_core(self) -> bool:
        return self.n_slabs == 1

    @property
    def flops(self) -> float:
        nz, ny, nx = self.shape
        return flops_3d_fft(nx, ny, nz)

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------

    def slab_plan(self):
        """The transform plan for one stage-1 slab.

        Five-step for slabs thick enough for its Z split; the host
        separable plan (:class:`repro.fft.plan.PlanND`) for the thin-slab
        tiny-card cases.
        """
        sub_nz, ny, nx = self.slab_shape
        if sub_nz >= 4:
            return FiveStepPlan((sub_nz, ny, nx), self.precision)
        from repro.fft.plan import PlanND

        return PlanND((sub_nz, ny, nx), precision=self.precision)

    def stage1_twiddles(self, i: int) -> np.ndarray:
        """Decimation twiddles ``W_nz^{i*k2}`` for slab ``i`` (per plane)."""
        nz = self.shape[0]
        sub_nz = nz // self.n_slabs
        wz = DEFAULT_CACHE.table(nz, self.precision)
        k2 = np.arange(sub_nz)
        return wz[(i * k2) % nz][:, None, None]

    def stage2_compute(
        self, group: np.ndarray, *, out: np.ndarray | None = None, workspace=None
    ) -> np.ndarray:
        """S-point FFTs across the slab axis of one ``k2`` plane group.

        FFT over axis 0; the recursive path covers slab counts beyond the
        straight-line codelets.
        """
        return fft_codelet_axis0(group, out=out, ws=workspace)

    def execute(self, x: np.ndarray, *, workspace=None) -> np.ndarray:
        """Forward transform on the host, staged exactly as on the device.

        Matches ``numpy.fft.fftn``; un-normalized.  ``workspace`` recycles
        one slab staging buffer and one slab output buffer across every
        slab (and routes the per-slab transforms through the pooled path)
        instead of allocating per slab; results are identical.
        """
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, got {x.shape}")
        nz, ny, nx = self.shape
        s = self.n_slabs
        if s == 1:
            return FiveStepPlan(self.shape, self.precision).execute(
                x, workspace=workspace
            )

        sub_nz = nz // s
        slab_plan = self.slab_plan()
        work = np.empty_like(x)
        ws = workspace
        pooled_slab = ws is not None and isinstance(slab_plan, FiveStepPlan)
        # Stage 1: per-slab 3-D FFT + decimation twiddles; with a
        # workspace the staging/output buffers are recycled across slabs.
        slab_buf = ws.acquire(self.slab_shape, x.dtype) if ws is not None else None
        out_buf = ws.acquire(self.slab_shape, x.dtype) if pooled_slab else None
        for i in range(s):
            if slab_buf is None:
                slab = np.ascontiguousarray(x[i::s])  # planes z ≡ i (mod s)
            else:
                np.copyto(slab_buf, x[i::s])
                slab = slab_buf
            if pooled_slab:
                out = slab_plan.execute(slab, workspace=ws, out=out_buf)
            else:
                out = slab_plan.execute(slab)
            out *= self.stage1_twiddles(i)
            work[i::s] = out
        if ws is not None:
            ws.release(slab_buf)
            ws.release(out_buf)
        # Stage 2: s-point FFTs across slabs for each k2 plane group.
        result = np.empty_like(x)
        group_buf = ws.acquire((s, ny, nx), x.dtype) if ws is not None else None
        for k in range(sub_nz):
            group = np.ascontiguousarray(work[k * s : (k + 1) * s])
            if group_buf is None:
                result[k::sub_nz] = self.stage2_compute(group)
            else:
                self.stage2_compute(group, out=group_buf, workspace=ws)
                result[k::sub_nz] = group_buf
        if ws is not None:
            ws.release(group_buf)
        return result

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def _twiddle_spec(self, device: DeviceSpec) -> KernelSpec:
        """Elementwise twiddle multiply over one slab (sequential r/w)."""
        sub_nz, ny, nx = self.slab_shape
        n_bytes = sub_nz * ny * nx * self._el
        seq = BurstPattern(
            base=0,
            scan_dims=(n_bytes // 128,),
            scan_strides=(128,),
            burst_len=1,
            burst_stride=128,
            transaction_bytes=128,
            name="twiddle-rw",
        )
        seq_out = BurstPattern(
            base=0,
            scan_dims=(n_bytes // 128,),
            scan_strides=(128,),
            burst_len=1,
            burst_stride=128,
            transaction_bytes=128,
            name="twiddle-w",
        )
        return KernelSpec(
            name="twiddle-multiply",
            grid_blocks=3 * device.n_sm,
            threads_per_block=64,
            regs_per_thread=16,
            shared_bytes_per_block=0,
            work_items=sub_nz * ny * nx,
            mix=InstructionMix(flops=6.0, other_ops=2.0),
            memory=(MemoryAccessSpec(seq), MemoryAccessSpec(seq_out)),
        )

    def _stage2_spec(self, device: DeviceSpec) -> KernelSpec:
        """S-point multirow FFT across one plane group (on device)."""
        sub_nz, ny, nx = self.slab_shape
        s = self.n_slabs
        plane_bytes = ny * nx * self._el
        read = BurstPattern(
            base=0,
            scan_dims=(plane_bytes // 128,),
            scan_strides=(128,),
            burst_len=s,
            burst_stride=plane_bytes,
            transaction_bytes=128,
            name="stage2-read",
        )
        write = BurstPattern(
            base=s * plane_bytes,
            scan_dims=(plane_bytes // 128,),
            scan_strides=(128,),
            burst_len=s,
            burst_stride=plane_bytes,
            transaction_bytes=128,
            name="stage2-write",
        )
        return KernelSpec(
            name=f"stage2-fft{s}",
            grid_blocks=3 * device.n_sm,
            threads_per_block=64,
            regs_per_thread=MULTIROW_REGISTERS.get(s, 132),
            shared_bytes_per_block=0,
            work_items=ny * nx,
            mix=InstructionMix(flops=5.0 * s * ilog2(s), other_ops=2.0 * s),
            memory=(MemoryAccessSpec(read), MemoryAccessSpec(write)),
        )

    def estimate(self, memsystem: MemorySystem | None = None) -> OutOfCoreEstimate:
        """Predicted Table 12 row for this plan's device."""
        if self.fits_in_core:
            raise ValueError(
                "transform fits in device memory; use estimate_fft3d instead"
            )
        device = self.device
        ms = memsystem or MemorySystem(device)
        link = link_for(device.pcie)
        nz, ny, nx = self.shape
        s = self.n_slabs
        sub_nz = nz // s
        slab_bytes = sub_nz * ny * nx * self._el
        total_bytes = nz * ny * nx * self._el

        slab_est = estimate_fft3d(device, self.slab_shape, self.precision, ms)
        # Stage 1: per-slab plane-by-plane transfers (the paper sends each
        # XY plane separately: 64 transfers of 2 MB each per slab).
        plane_bytes = ny * nx * self._el
        h2d_1 = s * sub_nz * link.transfer_time(plane_bytes, "h2d")
        d2h_1 = s * sub_nz * link.transfer_time(plane_bytes, "d2h")
        fft_1 = s * slab_est.on_board_seconds
        tw_1 = s * time_kernel(device, self._twiddle_spec(device), ms).seconds

        # Stage 2: per-group transfers of s planes + the small FFT pass.
        h2d_2 = sub_nz * s * link.transfer_time(plane_bytes, "h2d")
        d2h_2 = sub_nz * s * link.transfer_time(plane_bytes, "d2h")
        fft_2 = sub_nz * time_kernel(device, self._stage2_spec(device), ms).seconds

        return OutOfCoreEstimate(
            device=device.name,
            shape=self.shape,
            n_slabs=s,
            stage1_h2d=h2d_1,
            stage1_fft=fft_1,
            stage1_twiddle=tw_1,
            stage1_d2h=d2h_1,
            stage2_h2d=h2d_2,
            stage2_fft=fft_2,
            stage2_d2h=d2h_2,
            nominal_flops=self.flops,
        )


def estimate_out_of_core(
    device: DeviceSpec, n: int = 512, precision: str = "single"
) -> OutOfCoreEstimate:
    """Convenience wrapper: Table 12's 512^3 case on ``device``."""
    return OutOfCorePlan((n, n, n), device, precision=precision).estimate()
