"""Resilient execution: retries, checksums, checkpoints, degradation.

The recovery side of the fault model in :mod:`repro.gpu.faults`.  Four
mechanisms, all accounted on the same simulated clock as the useful work
so the *cost* of robustness is a first-class observable:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic jitter, charged to the device timeline as ``"backoff"``
  events;
* checksummed transfers — :class:`ResilientExecutor` CRCs every payload
  across the PCIe hop and re-sends on mismatch, which is what turns
  *silent* injected corruption into a retryable event;
* checkpointed out-of-core execution — :func:`run_out_of_core` stages the
  Section 3.3 pipeline through real simulated transfers with the stage-1
  slabs and stage-2 plane groups as natural checkpoints, so a mid-run
  device loss resumes from the last completed slab instead of re-paying
  the 2x-PCIe traffic from scratch;
* :class:`ResilienceReport` — attempts, retries by fault class,
  checkpoint restores and time lost to faults, surfaced by the plan that
  owns the transform.

Energy verification (Parseval: an un-normalized FFT scales total energy
by exactly N) is the cheap invariant used to catch ECC upsets that
checksums cannot see because they happen *after* the data crossed the
bus.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.five_step import FiveStepPlan
from repro.core.out_of_core import OutOfCoreEstimate, OutOfCorePlan
from repro.gpu.faults import (
    CorruptionError,
    DeviceLostError,
    KernelLaunchError,
    TransferError,
)
from repro.gpu.kernel import KernelSpec
from repro.gpu.simulator import DeviceArray, DeviceSimulator
from repro.gpu.timing import KernelTiming
from repro.util.validation import as_complex_array

__all__ = [
    "RetryPolicy",
    "ResilienceReport",
    "ResilientExecutor",
    "checksum",
    "energy_preserved",
    "run_out_of_core",
]


def checksum(a: np.ndarray) -> int:
    """CRC32 of an array's bytes (the simulated link-layer checksum).

    The CRC is taken through the buffer protocol, so a contiguous array is
    checksummed with zero copies (``tobytes`` would materialize the whole
    payload a second time).
    """
    return zlib.crc32(np.ascontiguousarray(a))


def _energy(a: np.ndarray) -> float:
    return float(np.vdot(a, a).real)


def energy_preserved(
    e_in: float, e_out: float, scale: float, rtol: float = 1e-4
) -> bool:
    """Check the Parseval invariant ``e_out == scale * e_in`` within ``rtol``.

    An un-normalized N-point FFT scales total energy by exactly N; an ECC
    upset (modeled as an exponent-field bit-flip) violates this by many
    orders of magnitude, so a loose tolerance never false-positives on
    legitimate single-precision rounding.
    """
    expected = scale * e_in
    return abs(e_out - expected) <= rtol * expected + 1e-20


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up, per fault class.

    ``max_attempts`` bounds transfer/launch/corruption retries;
    ``max_device_resets`` bounds full device-loss recoveries before the
    caller degrades (host fallback or re-planned ranks).  Backoff is
    exponential with deterministic jitter and is charged to the simulated
    timeline — waiting is not free.
    """

    max_attempts: int = 4
    backoff_base_s: float = 100e-6
    backoff_factor: float = 2.0
    jitter: float = 0.25
    max_device_resets: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_device_resets < 0:
            raise ValueError("max_device_resets must be non-negative")

    def backoff_seconds(self, attempt: int, u: float) -> float:
        """Backoff before retry ``attempt`` (0-based); ``u`` in [0,1) jitters."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        t = self.backoff_base_s * self.backoff_factor**attempt
        return t * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass
class ResilienceReport:
    """What resilience cost: attempts, retries, restores, lost time.

    Time fields are filled by :meth:`capture_timeline` from the owning
    simulator so they share its clock; counter fields are maintained live
    by the executor and the checkpointed runners.
    """

    attempts: int = 0
    retries: dict[str, int] = field(default_factory=dict)
    checksum_failures: int = 0
    checkpoint_restores: int = 0
    device_resets: int = 0
    downgrades: list[str] = field(default_factory=list)
    backoff_seconds: float = 0.0
    fault_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def total_retries(self) -> int:
        """Retries across every fault class."""
        return sum(self.retries.values())

    @property
    def useful_seconds(self) -> float:
        """Simulated time not lost to failed work or backoff waits."""
        return self.total_seconds - self.fault_seconds - self.backoff_seconds

    @property
    def degraded(self) -> bool:
        """True when any downgrade (host fallback, re-plan) was taken."""
        return bool(self.downgrades)

    def note_retry(self, fault_class: str) -> None:
        """Count one retry attributed to ``fault_class``."""
        self.retries[fault_class] = self.retries.get(fault_class, 0) + 1

    def signature(self) -> tuple[int, int, int, int, int]:
        """Cheap comparable fingerprint of the fault-visible counters.

        Two signatures taken around a batch dispatch differ iff the
        engine absorbed any fault during it (a retry, checksum failure,
        checkpoint restore, device reset or downgrade).  The serving
        layer's health tracker uses exactly this to mark a batch — and
        every future that rode in it — as *faulted* without walking the
        timeline.  ``attempts`` is deliberately excluded: it advances on
        clean transfers too.
        """
        return (
            self.total_retries,
            self.checksum_failures,
            self.checkpoint_restores,
            self.device_resets,
            len(self.downgrades),
        )

    def absorb(self, other: "ResilienceReport") -> "ResilienceReport":
        """Fold ``other``'s counters into this report; returns self.

        The aggregation a server needs: one report per plan/engine rolls
        up into a fleet-wide account.  Counter fields add; the time
        fields are *not* summed (engines sharing one simulator share one
        clock — use :meth:`capture_timeline` on the aggregate instead).
        """
        self.attempts += other.attempts
        for fault_class, n in other.retries.items():
            self.retries[fault_class] = self.retries.get(fault_class, 0) + n
        self.checksum_failures += other.checksum_failures
        self.checkpoint_restores += other.checkpoint_restores
        self.device_resets += other.device_resets
        self.downgrades.extend(other.downgrades)
        return self

    def capture_timeline(self, sim: DeviceSimulator) -> "ResilienceReport":
        """Snapshot time accounting from ``sim``'s timeline; returns self."""
        self.fault_seconds = sim.fault_seconds
        self.backoff_seconds = sim.backoff_seconds
        self.total_seconds = sim.elapsed
        return self

    def summary(self) -> str:
        """Human-readable multi-line account of the resilience cost."""
        lines = [
            f"attempts:            {self.attempts}",
            f"retries:             {self.total_retries} "
            + (f"({self.retries})" if self.retries else "(none)"),
            f"checksum failures:   {self.checksum_failures}",
            f"checkpoint restores: {self.checkpoint_restores}",
            f"device resets:       {self.device_resets}",
            f"downgrades:          {', '.join(self.downgrades) or 'none'}",
        ]
        if self.total_seconds > 0:
            lost = self.fault_seconds + self.backoff_seconds
            lines.append(
                f"time lost to faults: {lost * 1e3:.3f} ms of "
                f"{self.total_seconds * 1e3:.3f} ms "
                f"({100.0 * lost / self.total_seconds:.1f}%)"
            )
        return "\n".join(lines)


class ResilientExecutor:
    """Retrying, checksumming front-end to a :class:`DeviceSimulator`.

    Wraps the simulator's transfer/launch surface: every payload is CRC'd
    across the bus and re-sent on mismatch, aborted transfers and
    rejected launches are retried under the :class:`RetryPolicy`, and all
    backoff waits are charged to the simulated timeline.  Device loss is
    *not* handled here — it needs plan-level recovery (checkpoints,
    re-planning), so :class:`~repro.gpu.faults.DeviceLostError`
    propagates to the caller.

    With no fault injector attached the executor adds zero simulated
    time: checksums are host-side bookkeeping, and no backoff or repeat
    events are ever charged.
    """

    def __init__(
        self,
        sim: DeviceSimulator,
        policy: RetryPolicy | None = None,
        report: ResilienceReport | None = None,
        seed: int = 2008,
    ):
        self.sim = sim
        self.policy = policy or RetryPolicy()
        self.report = report or ResilienceReport()
        self._rng = np.random.default_rng(seed)

    def backoff(self, attempt: int, fault_class: str) -> float:
        """Charge one backoff wait to the timeline; returns its seconds."""
        t = self.policy.backoff_seconds(attempt, float(self._rng.random()))
        self.sim.charge(f"backoff-{fault_class}", t, kind="backoff")
        self.report.backoff_seconds += t
        self.report.note_retry(fault_class)
        return t

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def h2d(self, host: np.ndarray, dev: DeviceArray, label: str = "h2d") -> float:
        """Checksummed host->device copy with bounded retries.

        Checksums exist to catch *injected* transfer corruption; with no
        fault injector attached to the simulator nothing can corrupt the
        payload, so the CRC passes (two full passes over the data per
        hop) are skipped.  The retry accounting is identical either way.
        """
        fallible = self.sim.faults is not None
        expected = (
            checksum(
                np.asarray(host).reshape(dev.shape).astype(dev.dtype, copy=False)
            )
            if fallible
            else None
        )
        last = self.policy.max_attempts - 1
        for attempt in range(self.policy.max_attempts):
            self.report.attempts += 1
            try:
                t = self.sim.h2d(host, dev, label)
            except TransferError:
                if attempt == last:
                    raise
                self.backoff(attempt, "transfer")
                continue
            if expected is None or checksum(dev.data) == expected:
                return t
            self.report.checksum_failures += 1
            if attempt == last:
                raise CorruptionError(
                    f"h2d {label!r}: checksum mismatch persisted through "
                    f"{self.policy.max_attempts} attempts"
                )
            self.backoff(attempt, "corruption")
        raise AssertionError("unreachable")

    def d2h(self, dev: DeviceArray, host: np.ndarray, label: str = "d2h") -> float:
        """Checksummed device->host copy with bounded retries.

        CRC passes are skipped when no fault injector is attached, as in
        :meth:`h2d`.
        """
        fallible = self.sim.faults is not None
        expected = (
            checksum(dev.data.reshape(host.shape).astype(host.dtype, copy=False))
            if fallible
            else None
        )
        last = self.policy.max_attempts - 1
        for attempt in range(self.policy.max_attempts):
            self.report.attempts += 1
            try:
                t = self.sim.d2h(dev, host, label)
            except TransferError:
                if attempt == last:
                    raise
                self.backoff(attempt, "transfer")
                continue
            if expected is None or checksum(host) == expected:
                return t
            self.report.checksum_failures += 1
            if attempt == last:
                raise CorruptionError(
                    f"d2h {label!r}: checksum mismatch persisted through "
                    f"{self.policy.max_attempts} attempts"
                )
            self.backoff(attempt, "corruption")
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Launches
    # ------------------------------------------------------------------

    def launch(self, spec: KernelSpec, body=None, *args, **kwargs) -> KernelTiming:
        """Launch a spec'd kernel, retrying rejected launches."""
        last = self.policy.max_attempts - 1
        for attempt in range(self.policy.max_attempts):
            self.report.attempts += 1
            try:
                return self.sim.launch(spec, body, *args, **kwargs)
            except KernelLaunchError:
                if attempt == last:
                    raise
                self.backoff(attempt, "launch")
        raise AssertionError("unreachable")

    def launch_timed(
        self, label: str, seconds: float, body=None, *args, **kwargs
    ) -> float:
        """Launch with precomputed timing, retrying rejected launches."""
        last = self.policy.max_attempts - 1
        for attempt in range(self.policy.max_attempts):
            self.report.attempts += 1
            try:
                return self.sim.launch_timed(label, seconds, body, *args, **kwargs)
            except KernelLaunchError:
                if attempt == last:
                    raise
                self.backoff(attempt, "launch")
        raise AssertionError("unreachable")


# ----------------------------------------------------------------------
# Checkpointed out-of-core execution
# ----------------------------------------------------------------------


def run_out_of_core(
    plan: OutOfCorePlan,
    est: OutOfCoreEstimate,
    x: np.ndarray,
    executor: ResilientExecutor,
    verify: bool = False,
    name: str = "ooc",
    workspace=None,
) -> np.ndarray:
    """Forward out-of-core transform, staged through the simulator.

    Functionally identical to :meth:`OutOfCorePlan.execute` but every
    slab and plane group genuinely crosses the simulated PCIe link
    through device buffers, with the estimator's per-phase times charged
    as individual kernel launches.  The host-side ``work`` array holds
    completed stage-1 slabs and stage-2 plane groups — the checkpoints: a
    :class:`~repro.gpu.faults.DeviceLostError` mid-run triggers a device
    reset and resumption from the first incomplete unit rather than a
    restart.  After ``policy.max_device_resets`` losses the error
    propagates so the caller can degrade to the host plan.

    Returns the un-normalized forward transform (callers apply norms, and
    handle the inverse by conjugation as usual).

    The slab staging and d2h buffers are allocated once and recycled
    across every slab, group and checkpoint resume; ``workspace`` (a
    :class:`~repro.core.workspace.Workspace`) additionally routes the
    per-slab five-step transforms through the pooled zero-allocation
    path.  Results are identical with or without it.
    """
    sim = executor.sim
    policy = executor.policy
    report = executor.report
    x = as_complex_array(x, plan.precision)
    if x.shape != plan.shape:
        raise ValueError(f"plan is for shape {plan.shape}, got {x.shape}")
    nz, ny, nx = plan.shape
    s = plan.n_slabs
    sub_nz = nz // s
    dtype = x.dtype
    link = sim.pcie
    slab_plan = plan.slab_plan()
    n_slab = sub_nz * ny * nx

    fft_t = est.stage1_fft / s
    tw_t = est.stage1_twiddle / s
    s2_t = est.stage2_fft / sub_nz

    work = np.empty_like(x)
    result = np.empty_like(x)
    s1_done = [False] * s
    s2_done = [False] * sub_nz
    resets = 0

    # Staging buffers, allocated once and recycled across every slab and
    # plane group (and across checkpoint resumes).
    slab_buf = np.empty(plan.slab_shape, dtype)
    slab_tmp = np.empty(plan.slab_shape, dtype)
    group_tmp = np.empty((s, ny, nx), dtype)

    def run_slab_fft(dev: DeviceArray) -> None:
        # In-place on the device buffer: the five-step plan reads its
        # input before the final step writes, so out may alias x.
        if workspace is not None and isinstance(slab_plan, FiveStepPlan):
            slab_plan.execute(dev.data, workspace=workspace, out=dev.data)
        else:
            dev.data[...] = slab_plan.execute(dev.data)

    def plane_setup(label: str, n_planes: int, kind: str) -> None:
        # The paper stages each XY plane as its own transfer; the slab
        # copy above charged one setup, so account the remaining ones.
        if n_planes > 1:
            sim.charge(label, (n_planes - 1) * link.setup_s, kind)

    def stage1() -> None:
        dev = sim.allocate(plan.slab_shape, dtype, f"{name}-slab")
        try:
            for i in range(s):
                if s1_done[i]:
                    continue
                with sim.annotate(stage="s1", slab=i):
                    np.copyto(slab_buf, x[i::s])
                    slab = slab_buf
                    e_in = _energy(slab)
                    last = policy.max_attempts - 1
                    for attempt in range(policy.max_attempts):
                        executor.h2d(slab, dev, f"{name}-s1-h2d[{i}]")
                        plane_setup(f"{name}-s1-h2d[{i}]-planes", sub_nz, "h2d")
                        executor.launch_timed(
                            f"{name}-s1-fft[{i}]",
                            fft_t,
                            lambda: run_slab_fft(dev),
                        )
                        executor.launch_timed(
                            f"{name}-s1-twiddle[{i}]",
                            tw_t,
                            lambda: dev.data.__imul__(plan.stage1_twiddles(i)),
                        )
                        if not verify or energy_preserved(
                            e_in, _energy(dev.data), float(n_slab)
                        ):
                            break
                        if attempt == last:
                            raise CorruptionError(
                                f"stage-1 slab {i}: energy invariant violated "
                                f"through {policy.max_attempts} attempts"
                            )
                        executor.backoff(attempt, "ecc")
                    executor.d2h(dev, slab_tmp, f"{name}-s1-d2h[{i}]")
                    plane_setup(f"{name}-s1-d2h[{i}]-planes", sub_nz, "d2h")
                    work[i::s] = slab_tmp
                    s1_done[i] = True
        finally:
            if sim.is_allocated(dev):
                sim.free(dev)

    def stage2() -> None:
        dev = sim.allocate((s, ny, nx), dtype, f"{name}-group")
        try:
            for k in range(sub_nz):
                if s2_done[k]:
                    continue
                with sim.annotate(stage="s2", group=k):
                    group = np.ascontiguousarray(work[k * s : (k + 1) * s])
                    e_in = _energy(group)
                    last = policy.max_attempts - 1
                    for attempt in range(policy.max_attempts):
                        executor.h2d(group, dev, f"{name}-s2-h2d[{k}]")
                        plane_setup(f"{name}-s2-h2d[{k}]-planes", s, "h2d")
                        executor.launch_timed(
                            f"{name}-s2-fft[{k}]",
                            s2_t,
                            lambda: dev.data.__setitem__(
                                ..., plan.stage2_compute(dev.data)
                            ),
                        )
                        if not verify or energy_preserved(
                            e_in, _energy(dev.data), float(s)
                        ):
                            break
                        if attempt == last:
                            raise CorruptionError(
                                f"stage-2 group {k}: energy invariant violated "
                                f"through {policy.max_attempts} attempts"
                            )
                        executor.backoff(attempt, "ecc")
                    executor.d2h(dev, group_tmp, f"{name}-s2-d2h[{k}]")
                    plane_setup(f"{name}-s2-d2h[{k}]-planes", s, "d2h")
                    result[k::sub_nz] = group_tmp
                    s2_done[k] = True
        finally:
            if sim.is_allocated(dev):
                sim.free(dev)

    while True:
        try:
            stage1()
            stage2()
            return result
        except DeviceLostError:
            resets += 1
            report.device_resets += 1
            if resets > policy.max_device_resets:
                raise
            sim.reset_device()
            report.checkpoint_restores += 1
