"""Access-pattern taxonomy over the five-dimensional view (Table 2).

The paper splits ``V(X, Y1, Y2, Z1, Z2)`` (Fortran order, X fastest) and
names the four ways a 16-point FFT can read/write along one of the split
axes:

    A = (256,*,16,16,16)   star at Fortran dim 2, stride 2 KB
    B = (256,16,*,16,16)   dim 3, stride 32 KB
    C = (256,16,16,*,16)   dim 4, stride 512 KB
    D = (256,16,16,16,*)   dim 5, stride 8 MB

(strides for the 256^3 single-precision case).  Tables 3/4 measure the
bandwidth of every input/output pattern combination; the five-step
algorithm is ordered so that every kernel pairs its D-pattern read with an
A or B write, avoiding the C/D x C/D collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.gpu.access import BurstPattern
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import DeviceSpec
from repro.util.validation import check_power_of_two

__all__ = [
    "Pattern",
    "PATTERNS",
    "FiveDimView",
    "pattern_of_star_dim",
    "pattern_pair_bandwidth",
    "pattern_table",
]

#: Coalesced half-warp transaction for complex64 data: 16 threads x 8 B.
TRANSACTION_BYTES = 128


class Pattern(str, Enum):
    """The four starred-axis positions of Table 2."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"

    @property
    def star_dim(self) -> int:
        """Fortran dimension (2-5) carrying the star."""
        return {"A": 2, "B": 3, "C": 4, "D": 5}[self.value]


PATTERNS = (Pattern.A, Pattern.B, Pattern.C, Pattern.D)


def pattern_of_star_dim(star_dim: int) -> Pattern:
    """Inverse of :attr:`Pattern.star_dim`."""
    try:
        return {2: Pattern.A, 3: Pattern.B, 4: Pattern.C, 5: Pattern.D}[star_dim]
    except KeyError:
        raise ValueError(f"star dimension must be 2-5, got {star_dim}") from None


@dataclass(frozen=True)
class FiveDimView:
    """Byte-level geometry of a ``(nx, d2, d3, d4, d5)`` Fortran view.

    ``dims`` are the Fortran extents (dim 1 = X first); element size is
    8 bytes (complex64) unless overridden.
    """

    dims: tuple[int, int, int, int, int]
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if len(self.dims) != 5:
            raise ValueError("a five-dimensional view needs 5 extents")
        for d in self.dims:
            check_power_of_two(d, "extent")

    @property
    def strides(self) -> tuple[int, int, int, int, int]:
        """Byte stride of each Fortran dimension (dim 1 first)."""
        out = []
        s = self.element_bytes
        for d in self.dims:
            out.append(s)
            s *= d
        return tuple(out)

    @property
    def total_bytes(self) -> int:
        n = self.element_bytes
        for d in self.dims:
            n *= d
        return n

    def x_chunks(self) -> int:
        """Coalesced 128-byte transactions per X line."""
        line = self.dims[0] * self.element_bytes
        if line % TRANSACTION_BYTES != 0:
            raise ValueError(
                f"X line of {line} bytes is not a whole number of "
                f"{TRANSACTION_BYTES}-byte transactions"
            )
        return line // TRANSACTION_BYTES

    def star_burst(self, star_dim: int, base: int = 0) -> BurstPattern:
        """The access stream of a multirow FFT along ``star_dim`` (2-5).

        Each warp bursts over the starred axis (``burst_len`` = extent,
        spaced by its stride); scans sweep X fastest then the non-star
        dimensions in increasing order — the paper's fused cyclic loop.
        """
        if not 2 <= star_dim <= 5:
            raise ValueError(f"star dimension must be 2-5, got {star_dim}")
        strides = self.strides
        scan_dims = [self.x_chunks()]
        scan_strides = [TRANSACTION_BYTES]
        for dim in range(2, 6):
            if dim == star_dim:
                continue
            scan_dims.append(self.dims[dim - 1])
            scan_strides.append(strides[dim - 1])
        return BurstPattern(
            base=base,
            scan_dims=tuple(scan_dims),
            scan_strides=tuple(scan_strides),
            burst_len=self.dims[star_dim - 1],
            burst_stride=strides[star_dim - 1],
            transaction_bytes=TRANSACTION_BYTES,
            name=f"star@{star_dim}",
        )


def pattern_pair_bandwidth(
    device: DeviceSpec,
    pattern_in: Pattern,
    pattern_out: Pattern,
    n: int = 256,
    blocks: int | None = None,
    threads: int = 64,
    memsystem: MemorySystem | None = None,
) -> float:
    """Bandwidth (bytes/s) of the Tables 3/4 microbenchmark.

    A 16-point multirow FFT reads pattern ``pattern_in`` from the input
    array and writes ``pattern_out`` to a second array, with the paper's
    launch configuration (42/48 blocks of 64 threads).
    """
    check_power_of_two(n, "n")
    if n < 16:
        raise ValueError("the taxonomy experiment needs X extent >= 16")
    # The canonical (n,16,16,16,16) view of the paper's experiment; for
    # n != 256 only the X extent (and hence all strides) changes.
    view = FiveDimView((n, 16, 16, 16, 16))
    ms = memsystem or MemorySystem(device)
    read = view.star_burst(pattern_in.star_dim, base=0)
    write_view = FiveDimView(view.dims)
    write = write_view.star_burst(pattern_out.star_dim, base=view.total_bytes)
    groups = ms.default_groups(blocks, threads)
    return ms.effective_bandwidth([read, write], groups)


def pattern_table(
    device: DeviceSpec,
    n: int = 256,
    blocks: int | None = None,
    threads: int = 64,
) -> dict[tuple[Pattern, Pattern], float]:
    """The full 4x4 pattern-pair table (GB-level values in bytes/s)."""
    ms = MemorySystem(device)
    return {
        (pi, po): pattern_pair_bandwidth(
            device, pi, po, n=n, blocks=blocks, threads=threads, memsystem=ms
        )
        for pi in PATTERNS
        for po in PATTERNS
    }
