"""High-level public API for the bandwidth-intensive GPU 3-D FFT.

:class:`GpuFFT3D` is what a downstream application (e.g. the docking code
in :mod:`repro.apps.docking`) uses: plan once, transform many times, and —
when given a :class:`~repro.gpu.simulator.DeviceSimulator` — have every
launch and transfer accounted on the simulated timeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import FFT3DEstimate, estimate_fft3d
from repro.core.five_step import FiveStepPlan
from repro.core.out_of_core import OutOfCorePlan
from repro.fft.normalization import apply_norm
from repro.gpu.simulator import DeviceArray, DeviceSimulator
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.util.validation import as_complex_array

__all__ = ["GpuFFT3D", "gpu_fft3d", "gpu_ifft3d"]


class GpuFFT3D:
    """A planned 3-D transform bound to a (simulated) device.

    Parameters
    ----------
    shape:
        ``(nz, ny, nx)`` or a cube size.
    device:
        Target GPU spec; defaults to the 8800 GTX.
    simulator:
        Optional shared :class:`DeviceSimulator`; when omitted, one is
        created and exposed as :attr:`simulator`.
    precision / norm:
        As in :mod:`repro.fft`.

    Transforms larger than device memory transparently take the
    out-of-core path (Section 3.3).
    """

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        device: DeviceSpec = GEFORCE_8800_GTX,
        simulator: DeviceSimulator | None = None,
        precision: str = "single",
        norm: str = "backward",
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        self.device = device
        self.norm = norm
        self.precision = precision
        self.simulator = simulator or DeviceSimulator(device)
        self._ooc = OutOfCorePlan(shape, device, precision=precision)
        self.shape = self._ooc.shape
        self._plan = FiveStepPlan(self.shape, precision=precision)
        self._dev_v: DeviceArray | None = None
        self._dev_w: DeviceArray | None = None

    @property
    def out_of_core(self) -> bool:
        """True when the grid does not fit on the card."""
        return not self._ooc.fits_in_core

    @property
    def total_elements(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    # ------------------------------------------------------------------

    def _ensure_device_buffers(self) -> None:
        if self._dev_v is not None:
            return
        dtype = np.complex64 if self.precision == "single" else np.complex128
        self._dev_v = self.simulator.allocate(self.shape, dtype, "fft3d-V")
        self._dev_w = self.simulator.allocate(self.shape, dtype, "fft3d-WORK")

    def _run(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, got {x.shape}")

        if self.out_of_core:
            if inverse:
                out = np.conj(self._ooc.execute(np.conj(x)))
            else:
                out = self._ooc.execute(x)
            self.simulator.charge(
                "out-of-core-fft3d", self._ooc.estimate().total_seconds, "kernel"
            )
            return apply_norm(out, self.total_elements, self.norm, inverse)

        self._ensure_device_buffers()
        assert self._dev_v is not None
        self.simulator.h2d(x, self._dev_v, "fft3d-h2d")
        specs = self._plan.step_specs(self.device)
        result: dict[str, np.ndarray] = {}

        def body() -> None:
            result["out"] = self._plan.execute(self._dev_v.data, inverse=inverse)

        # Launch the five kernels; the functional work happens on the last
        # launch (one pass through the plan), the timing on each.
        for spec in specs[:-1]:
            self.simulator.launch(spec)
        self.simulator.launch(specs[-1], body)
        np.copyto(self._dev_v.data, result["out"])
        out = np.empty_like(x)
        self.simulator.d2h(self._dev_v, out, "fft3d-d2h")
        return apply_norm(out, self.total_elements, self.norm, inverse)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward transform; matches ``numpy.fft.fftn`` (default norm)."""
        return self._run(x, inverse=False)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Inverse transform; matches ``numpy.fft.ifftn`` (default norm)."""
        return self._run(x, inverse=True)

    # ------------------------------------------------------------------

    def estimate(self) -> FFT3DEstimate:
        """Performance prediction for one on-board transform."""
        return estimate_fft3d(
            self.device, self.shape, self.precision, self.simulator.memsystem
        )

    def release(self) -> None:
        """Free the device buffers."""
        if self._dev_v is not None:
            self.simulator.free(self._dev_v)
            self.simulator.free(self._dev_w)
            self._dev_v = self._dev_w = None


def gpu_fft3d(
    x: np.ndarray,
    device: DeviceSpec = GEFORCE_8800_GTX,
    norm: str = "backward",
) -> np.ndarray:
    """One-shot forward 3-D FFT through the simulated GPU path."""
    x = np.asarray(x)
    plan = GpuFFT3D(x.shape, device=device, norm=norm)
    try:
        return plan.forward(x)
    finally:
        plan.release()


def gpu_ifft3d(
    x: np.ndarray,
    device: DeviceSpec = GEFORCE_8800_GTX,
    norm: str = "backward",
) -> np.ndarray:
    """One-shot inverse 3-D FFT through the simulated GPU path."""
    x = np.asarray(x)
    plan = GpuFFT3D(x.shape, device=device, norm=norm)
    try:
        return plan.inverse(x)
    finally:
        plan.release()
