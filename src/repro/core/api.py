"""High-level public API for the bandwidth-intensive GPU 3-D FFT.

:class:`GpuFFT3D` is what a downstream application (e.g. the docking code
in :mod:`repro.apps.docking`) uses: plan once, transform many times, and —
when given a :class:`~repro.gpu.simulator.DeviceSimulator` — have every
launch and transfer accounted on the simulated timeline.

The plan is *resilient* by construction: transfers are checksummed and
retried, rejected launches are retried with backoff, a lost device is
reset and the transform resumed (from the last completed slab checkpoint
on the out-of-core path), and when the device keeps failing the plan
degrades to the host reference transform
(:class:`repro.fft.plan.PlanND`) and records the downgrade.  All of this
is driven by an optional :class:`~repro.gpu.faults.FaultInjector`; with
no injector attached the resilient machinery adds zero simulated time.
The cost of robustness is surfaced via :meth:`GpuFFT3D.resilience_report`.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING

import numpy as np

from repro.core.estimator import FFT3DEstimate, estimate_fft3d
from repro.core.out_of_core import OutOfCoreEstimate, OutOfCorePlan
from repro.core.plan_cache import PLAN_CACHE
from repro.core.workspace import Workspace
from repro.core.resilient import (
    ResilienceReport,
    ResilientExecutor,
    RetryPolicy,
    energy_preserved,
    run_out_of_core,
)
from repro.fft.normalization import apply_norm
from repro.fft.plan import PlanND
from repro.gpu.faults import (
    AllocationError,
    CorruptionError,
    DeviceLostError,
    FaultError,
    FaultInjector,
)
from repro.gpu.simulator import DeviceArray, DeviceSimulator
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.util.units import flops_3d_fft
from repro.util.validation import as_complex_array

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.profiler import Profiler

__all__ = ["GpuFFT3D", "gpu_fft3d", "gpu_ifft3d"]

#: Monotonic plan ids so device buffer names never collide when several
#: plans share one simulator.
_PLAN_IDS = count()


class GpuFFT3D:
    """A planned 3-D transform bound to a (simulated) device.

    Parameters
    ----------
    shape:
        ``(nz, ny, nx)`` or a cube size.
    device:
        Target GPU spec; defaults to the 8800 GTX.
    simulator:
        Optional shared :class:`DeviceSimulator`; when omitted, one is
        created and exposed as :attr:`simulator`.
    precision / norm:
        As in :mod:`repro.fft`.
    fault_injector:
        Optional :class:`~repro.gpu.faults.FaultInjector` scoped to *this
        plan's* operations; makes its transfers/launches/allocations
        fallible.  On a shared simulator the injector is attached only
        while this plan executes (via
        :meth:`DeviceSimulator.fault_scope`), so sibling plans stay
        fault-free; passing a second, different injector while the
        simulator already has one raises ``ValueError``.
    retry_policy:
        Bounds on retries, backoff and device resets; defaults to
        :class:`~repro.core.resilient.RetryPolicy`.
    verify:
        Run the Parseval energy check on transform results (catches ECC
        upsets).  Default ``None`` enables it exactly when a fault
        injector is attached.
    profiler:
        Optional :class:`repro.obs.Profiler`.  When given it is attached
        to this plan's simulator, every operation the plan charges is
        captured as an annotated span (tagged with :attr:`plan_id`), and
        the caller reads the trace/metrics off the profiler — the execute
        methods themselves are unchanged.
    name:
        Optional stable plan id used to prefix device buffer names and
        trace annotations; defaults to a process-unique ``fft3dN``.
        Callers sharing one simulator must keep names unique.
    pooling:
        Route host execution through a per-plan
        :class:`~repro.core.workspace.Workspace` arena (default).  Every
        transform intermediate is then a reused pooled buffer and the
        twiddle multiplies fuse into the rearrangement writes — zero
        steady-state heap allocations in the transform loop.  Results are
        bit-identical to ``pooling=False`` (the seed path).
    raise_on_device_loss:
        When True, a device loss that exhausts the reset budget
        re-raises :class:`~repro.gpu.faults.DeviceLostError` instead of
        silently degrading to the host path.  The serving layer's health
        monitor sets this so a dying card surfaces as a worker failure
        (ejection + re-queue) rather than vanishing into a slow host
        transform.
    backend:
        Hot-path implementation: ``"numpy"`` (default, the reference),
        ``"numba"``, ``"cjit"`` or ``"auto"`` (see :mod:`repro.jit`).
        Compiled backends degrade cleanly to NumPy when unavailable or
        when the plan geometry has no emitted kernels; results are
        bit-identical (cjit on FMA hardware) or within a documented
        ulp bound (DESIGN.md §18).

    Transforms larger than device memory transparently take the
    out-of-core path (Section 3.3), staged slab by slab through the
    simulator with per-slab checkpoints.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        device: DeviceSpec = GEFORCE_8800_GTX,
        simulator: DeviceSimulator | None = None,
        precision: str = "single",
        norm: str = "backward",
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        verify: bool | None = None,
        profiler: Profiler | None = None,
        name: str | None = None,
        pooling: bool = True,
        raise_on_device_loss: bool = False,
        backend: str = "numpy",
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        self.raise_on_device_loss = raise_on_device_loss
        self.device = device
        self.norm = norm
        self.precision = precision
        self._injector = None
        if simulator is None:
            # A plan-owned simulator can carry the injector directly.
            simulator = DeviceSimulator(device, fault_injector=fault_injector)
        elif fault_injector is not None:
            if simulator.faults is not None and simulator.faults is not fault_injector:
                raise ValueError(
                    "simulator already has a different fault injector; "
                    "plans sharing a simulator must share one injector"
                )
            if simulator.faults is None:
                # Shared simulator: never mutate it — scope the injector
                # to this plan's transforms so sibling plans stay clean.
                self._injector = fault_injector
        self.simulator = simulator
        self._ooc = OutOfCorePlan(shape, device, precision=precision)
        self.shape = self._ooc.shape
        self._plan = PLAN_CACHE.five_step(
            self.shape, precision, device, backend=backend
        )
        self._dev_v: DeviceArray | None = None
        self._dev_w: DeviceArray | None = None
        self._buf = name or f"fft3d{next(_PLAN_IDS)}"
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(self.simulator)
        self.retry_policy = retry_policy or RetryPolicy()
        self.resilience = ResilienceReport()
        self._executor = ResilientExecutor(
            self.simulator, self.retry_policy, self.resilience
        )
        self._verify = (
            (fault_injector is not None or self.simulator.faults is not None)
            if verify is None
            else verify
        )
        self.workspace: Workspace | None = None
        if pooling:
            self.workspace = Workspace(
                name=self._buf,
                metrics=profiler.metrics if profiler is not None else None,
            )
        self._ooc_estimate: OutOfCoreEstimate | None = None

    @property
    def plan_id(self) -> str:
        """The id tagged onto this plan's buffers and trace spans."""
        return self._buf

    @property
    def out_of_core(self) -> bool:
        """True when the grid does not fit on the card."""
        return not self._ooc.fits_in_core

    @property
    def total_elements(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    # ------------------------------------------------------------------

    def _allocate_retrying(self, shape, dtype, name: str) -> DeviceArray:
        last = self.retry_policy.max_attempts - 1
        for attempt in range(self.retry_policy.max_attempts):
            try:
                return self.simulator.allocate(shape, dtype, name)
            except AllocationError:
                if attempt == last:
                    raise
                self._executor.backoff(attempt, "alloc")
        raise AssertionError("unreachable")

    def _ensure_device_buffers(self) -> None:
        if self._dev_v is not None and self.simulator.is_allocated(self._dev_v):
            return
        dtype = np.complex64 if self.precision == "single" else np.complex128
        self._dev_v = self._allocate_retrying(self.shape, dtype, f"{self._buf}-V")
        self._dev_w = self._allocate_retrying(self.shape, dtype, f"{self._buf}-WORK")

    def _attempt_in_core(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        wall = self._plan.ensure_compiled()
        if wall:
            # First transform on a JIT plan pays the kernel warm-up; make
            # it a visible host span instead of unexplained latency.
            self.simulator.charge(f"{self._buf}-jit.compile", wall, "host")
        self._ensure_device_buffers()
        assert self._dev_v is not None
        ex = self._executor
        ex.h2d(x, self._dev_v, f"{self._buf}-h2d")
        specs = PLAN_CACHE.step_specs(
            self.shape, self.precision, self.device, backend=self._plan.backend
        )
        result: dict[str, np.ndarray] = {}
        ws = self.workspace

        def body() -> None:
            if ws is None:
                result["out"] = self._plan.execute(self._dev_v.data, inverse=inverse)
            else:
                buf = ws.acquire(self.shape, self._dev_v.data.dtype)
                result["out"] = self._plan.execute(
                    self._dev_v.data, inverse=inverse, workspace=ws, out=buf
                )

        try:
            # Launch the five kernels; the functional work happens on the
            # last launch (one pass through the plan), the timing on each.
            for spec in specs[:-1]:
                ex.launch(spec)
            ex.launch(specs[-1], body)
            if self._verify:
                e_in = float(np.vdot(x, x).real)
                e_out = float(np.vdot(result["out"], result["out"]).real)
                if not energy_preserved(e_in, e_out, float(self.total_elements)):
                    raise CorruptionError(
                        "in-core transform violated the energy invariant "
                        "(likely an ECC upset of a device buffer)"
                    )
            np.copyto(self._dev_v.data, result["out"])
        finally:
            if ws is not None:
                ws.release(result.get("out"))
        out = np.empty_like(x)
        ex.d2h(self._dev_v, out, f"{self._buf}-d2h")
        return out

    def _host_fallback(self, x: np.ndarray, inverse: bool, reason: str) -> np.ndarray:
        """Graceful degradation: host reference transform, charged as host time."""
        self.resilience.downgrades.append(f"host-fallback: {reason}")
        if self.simulator.device_lost:
            self.simulator.reset_device()
            self.resilience.device_resets += 1
        # The device buffers are dead weight from here on: free them (a
        # reset already discarded them) instead of leaking the capacity.
        self.release()
        from repro.baselines.fftw_cpu import FftwCpuBaseline

        rate = FftwCpuBaseline(precision=self.precision).sustained_gflops(self.shape)
        nz, ny, nx = self.shape
        self.simulator.charge(
            f"{self._buf}-host-fallback",
            flops_3d_fft(nx, ny, nz) / (rate * 1e9),
            "host",
        )
        plan = PlanND(self.shape, precision=self.precision)
        if inverse:
            return np.conj(plan.execute(np.conj(x)))
        return plan.execute(x)

    def _run_in_core(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        resets = 0
        corruption_retries = 0
        while True:
            try:
                return self._attempt_in_core(x, inverse)
            except DeviceLostError:
                self._dev_v = self._dev_w = None  # allocations died with card
                if self.raise_on_device_loss:
                    raise
                resets += 1
                self.resilience.device_resets += 1
                if resets > self.retry_policy.max_device_resets:
                    return self._host_fallback(x, inverse, "device lost")
                self.simulator.reset_device()
            except CorruptionError:
                corruption_retries += 1
                if corruption_retries >= self.retry_policy.max_attempts:
                    return self._host_fallback(x, inverse, "persistent corruption")
                self._executor.backoff(corruption_retries - 1, "ecc")
            except FaultError as exc:
                # Transfer/launch/allocation retries already exhausted in
                # the executor: repeated device failure, so degrade.
                return self._host_fallback(x, inverse, type(exc).__name__)

    def _run_out_of_core(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        est = self.out_of_core_estimate()
        y = np.conj(x) if inverse else x
        try:
            out = run_out_of_core(
                self._ooc,
                est,
                y,
                self._executor,
                verify=self._verify,
                name=f"{self._buf}-ooc",
                workspace=self.workspace,
            )
        except FaultError as exc:
            if self.raise_on_device_loss and isinstance(exc, DeviceLostError):
                raise
            return self._host_fallback(x, inverse, type(exc).__name__)
        return np.conj(out) if inverse else out

    def _run(
        self, x: np.ndarray, inverse: bool, force_host: bool = False
    ) -> np.ndarray:
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, got {x.shape}")
        with self.simulator.annotate(plan=self._buf):
            with self.simulator.fault_scope(self._injector):
                if force_host:
                    out = self._host_fallback(x, inverse, "forced")
                elif self.out_of_core:
                    out = self._run_out_of_core(x, inverse)
                else:
                    out = self._run_in_core(x, inverse)
        return apply_norm(out, self.total_elements, self.norm, inverse)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward transform; matches ``numpy.fft.fftn`` (default norm)."""
        return self._run(x, inverse=False)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Inverse transform; matches ``numpy.fft.ifftn`` (default norm)."""
        return self._run(x, inverse=True)

    def execute(
        self, x: np.ndarray, inverse: bool = False, force_host: bool = False
    ) -> np.ndarray:
        """One transform in either direction (the generic entry point).

        ``force_host`` skips the device entirely and runs the reference
        host transform (charged as host time) — the serving layer's
        degradation path when every worker card is ejected.
        """
        return self._run(x, inverse=inverse, force_host=force_host)

    # ------------------------------------------------------------------

    def estimate(self) -> FFT3DEstimate:
        """Performance prediction for one on-board transform."""
        return estimate_fft3d(
            self.device, self.shape, self.precision, self.simulator.memsystem
        )

    def out_of_core_estimate(self) -> OutOfCoreEstimate:
        """Cached Table-12-style estimate (out-of-core plans only)."""
        if self._ooc_estimate is None:
            self._ooc_estimate = self._ooc.estimate()
        return self._ooc_estimate

    def resilience_report(self) -> ResilienceReport:
        """The live resilience account, time fields synced to the simulator."""
        return self.resilience.capture_timeline(self.simulator)

    def release(self) -> None:
        """Free the device buffers (a no-op for buffers lost to a reset)."""
        for arr in (self._dev_v, self._dev_w):
            if arr is not None and self.simulator.is_allocated(arr):
                self.simulator.free(arr)
        self._dev_v = self._dev_w = None

    def close(self) -> None:
        """Tear the plan down: device buffers are freed, capacity returned.

        Subsequent transforms re-allocate transparently, so ``close`` is
        safe to call between bursts of work as well as at end of life.
        """
        self.release()

    def __enter__(self) -> "GpuFFT3D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def gpu_fft3d(
    x: np.ndarray,
    device: DeviceSpec = GEFORCE_8800_GTX,
    norm: str = "backward",
) -> np.ndarray:
    """One-shot forward 3-D FFT through the simulated GPU path."""
    x = np.asarray(x)
    with GpuFFT3D(x.shape, device=device, norm=norm) as plan:
        return plan.forward(x)


def gpu_ifft3d(
    x: np.ndarray,
    device: DeviceSpec = GEFORCE_8800_GTX,
    norm: str = "backward",
) -> np.ndarray:
    """One-shot inverse 3-D FFT through the simulated GPU path."""
    x = np.asarray(x)
    with GpuFFT3D(x.shape, device=device, norm=norm) as plan:
        return plan.inverse(x)
