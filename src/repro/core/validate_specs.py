"""Cross-validation: analytic KernelSpecs vs observed execution.

The performance model times *declared* memory behavior (``KernelSpec`` /
``BurstPattern``); the warp executor *observes* actual behavior.  If the
declarations drifted from the kernels (a transposed stride, a forgotten
pass), every table would silently shift.  This module runs the thread-
level kernels on small grids and checks that the observation matches the
declaration transaction for transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import multirow_step_spec, shared_x_step_spec
from repro.core.patterns import FiveDimView
from repro.core.warp_kernels import run_multirow_step, run_shared_x_step
from repro.fft.twiddle import four_step_twiddles
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX

__all__ = ["SpecValidation", "validate_multirow_spec", "validate_shared_spec"]


@dataclass(frozen=True)
class SpecValidation:
    """Declared vs observed memory behavior of one kernel."""

    kernel: str
    declared_transactions: int
    observed_transactions: int
    observed_coalesced_fraction: float
    max_error: float

    @property
    def consistent(self) -> bool:
        return (
            self.declared_transactions == self.observed_transactions
            and self.observed_coalesced_fraction == 1.0
        )


def validate_multirow_spec(
    device: DeviceSpec = GEFORCE_8800_GTX,
    shape: tuple[int, int, int, int, int] = (16, 4, 2, 2, 16),
    seed: int = 0,
) -> SpecValidation:
    """Steps 1-4: declared burst geometry vs executed transactions.

    ``shape`` is the C-order state ``(d0, d1, d2, d3, nx)``; the kernel
    transforms ``d0`` and writes pattern-A style (new digit at C pos 3).
    """
    rng = np.random.default_rng(seed)
    state = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    radix = shape[0]
    w = four_step_twiddles(shape[1], radix)

    # The analytic declaration for the same geometry.  Fortran dims are
    # reversed C axes; the write lands at Fortran dim 2 (pattern A).
    view_in = FiveDimView(tuple(reversed(shape)))
    out_c_shape = (shape[1], shape[2], shape[3], shape[0], shape[4])
    view_out = FiveDimView(tuple(reversed(out_c_shape)))
    spec = multirow_step_spec(
        device, view_in, view_out, 2, 0, view_in.total_bytes, True, "validate"
    )
    declared = sum(
        m.pattern.n_scans * m.pattern.burst_len * m.pattern.transactions_per_point
        for m in spec.memory
    )

    res = run_multirow_step(state, 0, 3, twiddle=w)
    from repro.core.kernels import multirow_half1

    err = float(np.abs(res.output - multirow_half1(state, w)).max())
    return SpecValidation(
        kernel=spec.name,
        declared_transactions=declared,
        observed_transactions=res.report.global_transactions,
        observed_coalesced_fraction=res.report.coalesced_fraction,
        max_error=err,
    )


def validate_shared_spec(
    device: DeviceSpec = GEFORCE_8800_GTX,
    batch: int = 2,
    n: int = 256,
    seed: int = 0,
) -> SpecValidation:
    """Step 5: declared line traffic vs executed transactions."""
    rng = np.random.default_rng(seed)
    lines = rng.standard_normal((batch, n)) + 1j * rng.standard_normal((batch, n))

    spec = shared_x_step_spec(device, n, batch, name="validate-step5")
    declared = sum(
        m.pattern.n_scans * m.pattern.burst_len * m.pattern.transactions_per_point
        for m in spec.memory
    )

    res = run_shared_x_step(lines, threads_per_block=n // 4)
    err = float(np.abs(res.output - np.fft.fft(lines, axis=-1)).max())
    return SpecValidation(
        kernel=spec.name,
        declared_transactions=declared,
        observed_transactions=res.report.global_transactions,
        observed_coalesced_fraction=res.report.coalesced_fraction,
        max_error=err,
    )
