"""End-to-end performance estimation for the five-step 3-D FFT.

Drives the GPU timing model over a plan's kernel specs and aggregates the
per-step numbers the paper reports (Table 7), the whole-transform GFLOPS
(Figures 1-3), and the PCIe-inclusive variants (Table 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decompose import decomposition_for
from repro.core.five_step import FiveStepPlan
from repro.core.kernels import shared_x_step_spec
from repro.gpu.interconnect import ClusterInterconnect
from repro.gpu.memsystem import MemorySystem
from repro.gpu.pcie import link_for
from repro.gpu.specs import DeviceSpec
from repro.gpu.timing import KernelTiming, time_kernel
from repro.util.units import flops_1d_fft

__all__ = [
    "FFT3DEstimate",
    "BatchPipelineEstimate",
    "DistributedFFT3DEstimate",
    "estimate_fft3d",
    "estimate_batch_pipelined",
    "estimate_batch_1d",
    "estimate_distributed_fft3d",
]

#: Real kernels achieve slightly less than the pattern microbenchmark
#: (extra index arithmetic between bursts, imperfect issue overlap): the
#: paper's step-1 kernels reach 61.2 GB/s where the D/A microbenchmark
#: pair reaches 67.5 (Tables 4 vs 7).  Applied to the memory phase of
#: every FFT kernel.
KERNEL_BANDWIDTH_DERATE = 0.91


def _derated(timing: KernelTiming, derate: float = KERNEL_BANDWIDTH_DERATE) -> KernelTiming:
    """Apply a bandwidth derate factor to a timing's memory phase."""
    mem = timing.memory_seconds / derate
    seconds = (
        timing.seconds - max(timing.memory_seconds, timing.compute_seconds)
        + max(mem, timing.compute_seconds)
    )
    return KernelTiming(
        kernel=timing.kernel,
        seconds=seconds,
        memory_seconds=mem,
        compute_seconds=timing.compute_seconds,
        occupancy=timing.occupancy,
        global_bandwidth=timing.global_bandwidth * derate,
        bytes_moved=timing.bytes_moved,
        flops=timing.flops,
    )


@dataclass(frozen=True)
class FFT3DEstimate:
    """Predicted performance of one 3-D FFT on one device."""

    device: str
    shape: tuple[int, int, int]
    steps: tuple[KernelTiming, ...]
    #: Nominal flop count (15 N^3 log2 N convention).
    nominal_flops: float
    h2d_seconds: float
    d2h_seconds: float

    @property
    def on_board_seconds(self) -> float:
        return sum(t.seconds for t in self.steps)

    @property
    def on_board_gflops(self) -> float:
        return self.nominal_flops / self.on_board_seconds / 1e9

    @property
    def total_seconds(self) -> float:
        """Including host<->device transfer (Table 10)."""
        return self.h2d_seconds + self.on_board_seconds + self.d2h_seconds

    @property
    def total_gflops(self) -> float:
        return self.nominal_flops / self.total_seconds / 1e9

    def step_time(self, index: int) -> KernelTiming:
        """1-based step lookup matching the paper's numbering."""
        if not 1 <= index <= len(self.steps):
            raise IndexError(f"step index {index} out of range")
        return self.steps[index - 1]


def estimate_fft3d(
    device: DeviceSpec,
    shape: tuple[int, int, int] | int,
    precision: str = "single",
    memsystem: MemorySystem | None = None,
) -> FFT3DEstimate:
    """Predict the five-step transform's performance on ``device``."""
    plan = FiveStepPlan(shape, precision=precision)
    ms = memsystem or MemorySystem(device)
    specs = plan.step_specs(device)
    # The derate models strided-kernel overheads; step 5's purely
    # sequential sweep achieves the full copy bandwidth (Table 7).
    timings = tuple(
        _derated(
            time_kernel(device, spec, ms),
            KERNEL_BANDWIDTH_DERATE if i < 4 else 1.0,
        )
        for i, spec in enumerate(specs)
    )
    link = link_for(device.pcie)
    n_bytes = plan.total_bytes
    return FFT3DEstimate(
        device=device.name,
        shape=plan.shape,
        steps=timings,
        nominal_flops=plan.flops,
        h2d_seconds=link.transfer_time(n_bytes, "h2d"),
        d2h_seconds=link.transfer_time(n_bytes, "d2h"),
    )


@dataclass(frozen=True)
class BatchPipelineEstimate:
    """Predicted makespan of a pipelined same-shape batch.

    The model behind :class:`~repro.core.batch.BatchedGpuFFT3D`'s
    scheduling: with at least two stream slots the steady-state cost per
    entry is the *largest* of the three phase times (upload, five
    kernels, download) while the first entry still pays all three —
    pipeline fill and drain.  With one slot nothing overlaps and the
    batch degenerates to ``batch`` sequential round trips.  This is what
    admission control uses to decide whether a deadline is feasible
    before any device work happens.
    """

    device: str
    shape: tuple[int, int, int]
    batch: int
    n_streams: int
    h2d_seconds: float
    kernel_seconds: float
    d2h_seconds: float

    @property
    def bottleneck_seconds(self) -> float:
        """The per-entry steady-state cost: the slowest phase."""
        return max(self.h2d_seconds, self.kernel_seconds, self.d2h_seconds)

    @property
    def sequential_seconds(self) -> float:
        """Unpipelined cost: every entry pays all three phases."""
        return self.batch * (
            self.h2d_seconds + self.kernel_seconds + self.d2h_seconds
        )

    @property
    def makespan_seconds(self) -> float:
        """Predicted end-to-end batch time on an idle device."""
        if self.batch == 0:
            return 0.0
        if self.n_streams < 2:
            return self.sequential_seconds
        fill_drain = self.h2d_seconds + self.kernel_seconds + self.d2h_seconds
        return fill_drain + (self.batch - 1) * self.bottleneck_seconds

    @property
    def per_entry_seconds(self) -> float:
        """Amortized cost of one entry inside the batch."""
        return self.makespan_seconds / self.batch if self.batch else 0.0


def estimate_batch_pipelined(
    device: DeviceSpec,
    shape: tuple[int, int, int] | int,
    precision: str = "single",
    batch: int = 1,
    n_streams: int = 3,
    memsystem: MemorySystem | None = None,
) -> BatchPipelineEstimate:
    """Predict a ``batch``-entry pipelined run of the five-step transform."""
    if batch < 0:
        raise ValueError("batch must be non-negative")
    est = estimate_fft3d(device, shape, precision, memsystem)
    return BatchPipelineEstimate(
        device=est.device,
        shape=est.shape,
        batch=batch,
        n_streams=n_streams,
        h2d_seconds=est.h2d_seconds,
        kernel_seconds=est.on_board_seconds,
        d2h_seconds=est.d2h_seconds,
    )


@dataclass(frozen=True)
class DistributedFFT3DEstimate:
    """Predicted performance of one decomposed 3-D FFT across a cluster.

    Each node transforms ``1/p`` of the rows of every 1-D stage, so the
    on-board compute divides by the node count; what does *not* divide
    is the all-to-all exchange between stages, whose cost comes from the
    :class:`~repro.gpu.interconnect.ClusterInterconnect` model.  The
    ratio of the two is the whole scaling story: on a full-bisection
    fabric the exchange stays flat per node and speedup is near-linear;
    on an oversubscribed flat fabric the bisection term grows with ``p``
    and the transform hits a cluster-level PCIe wall.
    """

    device: str
    shape: tuple[int, int, int]
    n_nodes: int
    decomposition: str
    nominal_flops: float
    #: Per-node on-board compute, already divided by ``n_nodes``.
    local_seconds: float
    #: Seconds of each modeled all-to-all phase (1 for slab, 2 for pencil).
    exchange_phase_seconds: tuple[float, ...]
    #: Per-node host<->device edges for the node's own block.
    h2d_seconds: float
    d2h_seconds: float

    @property
    def exchange_seconds(self) -> float:
        """Total time spent in inter-node exchange phases."""
        return sum(self.exchange_phase_seconds)

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time: local stages plus exchanges plus edges."""
        return (
            self.h2d_seconds
            + self.local_seconds
            + self.exchange_seconds
            + self.d2h_seconds
        )

    @property
    def total_gflops(self) -> float:
        """Aggregate throughput across the cluster."""
        return self.nominal_flops / self.total_seconds / 1e9

    @property
    def parallel_efficiency(self) -> float:
        """Speedup over one node divided by the node count."""
        single = (
            self.h2d_seconds * self.n_nodes
            + self.local_seconds * self.n_nodes
            + self.d2h_seconds * self.n_nodes
        )
        return single / (self.total_seconds * self.n_nodes)


def estimate_distributed_fft3d(
    device: DeviceSpec,
    shape: tuple[int, int, int] | int,
    n_nodes: int,
    decomposition: str = "slab",
    precision: str = "single",
    interconnect: ClusterInterconnect | None = None,
    memsystem: MemorySystem | None = None,
) -> DistributedFFT3DEstimate:
    """Predict a slab/pencil-decomposed transform on ``n_nodes`` nodes."""
    est = estimate_fft3d(device, shape, precision, memsystem)
    plan = FiveStepPlan(shape, precision=precision)
    itemsize = plan.total_bytes // (plan.shape[0] * plan.shape[1] * plan.shape[2])
    decomp = decomposition_for(decomposition, plan.shape, n_nodes, itemsize)
    fabric = interconnect or ClusterInterconnect()
    phases = tuple(
        fabric.all_to_all_seconds(group, per_pair)
        for group, per_pair in decomp.exchange_phases
    )
    return DistributedFFT3DEstimate(
        device=est.device,
        shape=plan.shape,
        n_nodes=n_nodes,
        decomposition=decomp.kind,
        nominal_flops=plan.flops,
        local_seconds=est.on_board_seconds / n_nodes,
        exchange_phase_seconds=phases,
        h2d_seconds=est.h2d_seconds / n_nodes,
        d2h_seconds=est.d2h_seconds / n_nodes,
    )


def estimate_batch_1d(
    device: DeviceSpec,
    n: int,
    batch: int,
    out_of_place: bool = False,
    memsystem: MemorySystem | None = None,
) -> KernelTiming:
    """Predict a batched 1-D transform (Table 8: 65536 x 256-point)."""
    ms = memsystem or MemorySystem(device)
    spec = shared_x_step_spec(
        device,
        n,
        batch,
        base_in=0,
        base_out=(batch * n * 8 if out_of_place else None),
        name=f"batch1d-{n}x{batch}",
    )
    timing = _derated(time_kernel(device, spec, ms), 1.0)
    # Re-anchor the flops field to the nominal convention for reporting.
    return KernelTiming(
        kernel=timing.kernel,
        seconds=timing.seconds,
        memory_seconds=timing.memory_seconds,
        compute_seconds=timing.compute_seconds,
        occupancy=timing.occupancy,
        global_bandwidth=timing.global_bandwidth,
        bytes_moved=timing.bytes_moved,
        flops=flops_1d_fft(n, batch),
    )
