"""Multi-GPU 3-D FFT by slab decomposition (beyond the paper).

The paper runs one card; its conclusion points at clusters ("Large-Scale
Commodity Accelerated Clusters" is the project funding it).  The standard
distributed 3-D FFT assigns each GPU a Z-slab:

    1. each GPU transforms its slab's X and Y axes (2-D FFTs, on-card);
    2. all-to-all exchange: the slab/pencil redistribution crosses the
       host (PCIe down + PCIe up — these cards predate peer-to-peer);
    3. each GPU transforms its now-local Z pencils (1-D FFTs).

Functionally exact (validated against ``numpy.fft.fftn``); the timing
model extends the single-card estimator with the exchange cost, exposing
the classic result that the all-to-all dominates scaling — the
multi-card version of the paper's PCIe findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.estimator import estimate_fft3d
from repro.core.resilient import ResilienceReport, RetryPolicy
from repro.fft.multirow import multirow_fft
from repro.gpu.faults import DeviceLostError, FaultInjector, KernelLaunchError
from repro.gpu.memsystem import MemorySystem
from repro.gpu.pcie import link_for
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.util.indexing import ilog2
from repro.util.units import flops_3d_fft
from repro.util.validation import as_complex_array

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.profiler import Profiler
    from repro.obs.tracer import Tracer

__all__ = ["MultiGpuBatchEstimate", "MultiGpuEstimate", "MultiGpuFFT3D"]


def _largest_pow2(k: int) -> int:
    return 1 << (k.bit_length() - 1)


def _rank_compute(injector, policy, report, label, fn):
    """Run one rank's phase kernel under the injector's launch stream.

    ``launch-fail`` retries the rank's kernel up to the policy bound;
    ``device-lost`` propagates (the rank is gone — the caller re-plans).
    Other fault kinds do not apply to this coarse per-rank model and are
    ignored.
    """
    if injector is None:
        return fn()
    last = policy.max_attempts - 1
    for attempt in range(policy.max_attempts):
        report.attempts += 1
        fault = injector.on_launch(label)
        if fault == "device-lost":
            raise DeviceLostError(f"rank lost during {label}")
        if fault == "launch-fail":
            if attempt == last:
                raise KernelLaunchError(
                    f"{label} rejected {policy.max_attempts} times"
                )
            report.note_retry("launch")
            continue
        return fn()
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class MultiGpuEstimate:
    """Predicted timing of the distributed transform."""

    device: str
    n_gpus: int
    n: int
    xy_seconds: float
    exchange_seconds: float
    z_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.xy_seconds + self.exchange_seconds + self.z_seconds

    @property
    def total_gflops(self) -> float:
        return flops_3d_fft(self.n) / self.total_seconds / 1e9

    @property
    def exchange_fraction(self) -> float:
        return self.exchange_seconds / self.total_seconds


@dataclass(frozen=True)
class MultiGpuBatchEstimate:
    """Predicted timing of a pipelined batch of distributed transforms.

    Per entry the transform alternates between the GPUs (XY then Z
    phases) and the host bus (the all-to-all); across entries those two
    resources overlap — while entry ``i`` exchanges, entry ``i+1`` runs
    its XY phase.  The steady-state cost per entry is therefore the
    *larger* of GPU time and exchange time, with one fill and one drain
    at the ends.
    """

    per_entry: MultiGpuEstimate
    n_batch: int

    @property
    def sequential_seconds(self) -> float:
        """Entries back to back with no overlap."""
        return self.n_batch * self.per_entry.total_seconds

    @property
    def pipelined_seconds(self) -> float:
        e = self.per_entry
        if self.n_batch == 0:
            return 0.0
        gpu = e.xy_seconds + e.z_seconds
        steady = max(gpu, e.exchange_seconds)
        return e.xy_seconds + (self.n_batch - 1) * steady + e.exchange_seconds + e.z_seconds

    @property
    def speedup(self) -> float:
        """Sequential over pipelined simulated time (>= 1)."""
        if self.pipelined_seconds == 0.0:
            return 1.0
        return self.sequential_seconds / self.pipelined_seconds


class MultiGpuFFT3D:
    """Slab-decomposed transform across ``n_gpus`` identical cards."""

    def __init__(
        self,
        n: int,
        n_gpus: int = 2,
        device: DeviceSpec = GEFORCE_8800_GTX,
        precision: str = "single",
    ):
        ilog2(n)
        if n_gpus < 1 or (n_gpus & (n_gpus - 1)) != 0:
            raise ValueError("n_gpus must be a power of two")
        if n % n_gpus != 0 or n // n_gpus < 1:
            raise ValueError(f"{n_gpus} GPUs cannot split an n={n} grid")
        self.n = n
        self.n_gpus = n_gpus
        self.device = device
        self.precision = precision
        self._el = 8 if precision == "single" else 16
        self._span_estimate: MultiGpuEstimate | None = None

    @property
    def slab_nz(self) -> int:
        return self.n // self.n_gpus

    # ------------------------------------------------------------------

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Forward transform, staged exactly as the cards would run it."""
        return self._execute_ranks(x, None, None, None)

    def _execute_ranks(self, x, injector, policy, report) -> np.ndarray:
        x = as_complex_array(x, self.precision)
        n = self.n
        if x.shape != (n, n, n):
            raise ValueError(f"plan is for {n}^3, got {x.shape}")
        g = self.n_gpus
        snz = self.slab_nz

        # Phase 1: per-GPU X and Y transforms on its Z-slab.
        work = np.empty_like(x)
        for rank in range(g):

            def xy_slab(rank: int = rank) -> np.ndarray:
                slab = x[rank * snz:(rank + 1) * snz]
                slab = multirow_fft(slab, axis=2)   # X
                return multirow_fft(slab, axis=1)   # Y

            work[rank * snz:(rank + 1) * snz] = _rank_compute(
                injector, policy, report, f"rank{rank}-xy", xy_slab
            )

        # Phase 2: all-to-all — regroup so each GPU owns full Z pencils
        # for a contiguous Y range (ny/n_gpus rows each).  Host-staged.
        # (Functionally this is just a re-view of the full array.)

        # Phase 3: per-GPU Z transforms on its pencil block.
        out = np.empty_like(x)
        sny = n // g
        for rank in range(g):

            def z_block(rank: int = rank) -> np.ndarray:
                block = work[:, rank * sny:(rank + 1) * sny, :]
                return multirow_fft(block, axis=0)

            out[:, rank * sny:(rank + 1) * sny, :] = _rank_compute(
                injector, policy, report, f"rank{rank}-z", z_block
            )
        return out

    def _emit_entry_spans(self, tracer: Tracer, t0: float, entry: int) -> float:
        """Lay one entry's rank phases onto ``tracer``'s trace.

        The rank model is analytic (no device simulator), so the spans
        carry the estimator's per-phase seconds: every rank's XY kernel
        starts together at ``t0`` (the cards run concurrently), the
        host-staged all-to-all follows, then the Z kernels.  Returns the
        entry's completion time, the next entry's ``t0``.
        """
        if self._span_estimate is None:
            self._span_estimate = self.estimate()
        est = self._span_estimate
        plan_tag = f"multigpu{self.n_gpus}x{self.n}"
        for rank in range(self.n_gpus):
            tracer.emit(
                "kernel",
                f"rank{rank}-xy",
                t0,
                est.xy_seconds,
                stream=rank,
                plan=plan_tag,
                entry=entry,
                phase="xy",
            )
        t1 = t0 + est.xy_seconds
        tracer.emit(
            "host",
            "all-to-all",
            t1,
            est.exchange_seconds,
            plan=plan_tag,
            entry=entry,
            phase="exchange",
        )
        t2 = t1 + est.exchange_seconds
        for rank in range(self.n_gpus):
            tracer.emit(
                "kernel",
                f"rank{rank}-z",
                t2,
                est.z_seconds,
                stream=rank,
                plan=plan_tag,
                entry=entry,
                phase="z",
            )
        return t2 + est.z_seconds

    def execute_resilient(
        self,
        x: np.ndarray,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        report: ResilienceReport | None = None,
        profiler: Profiler | None = None,
    ) -> tuple[np.ndarray, ResilienceReport]:
        """Distributed transform that survives rank loss by re-planning.

        Each rank's phase-1 (``rankN-xy``) and phase-3 (``rankN-z``)
        kernels poll the injector's launch stream: ``launch-fail``
        retries that rank's kernel under ``retry_policy``; ``device-lost``
        drops the rank, and the transform re-plans the slab decomposition
        over the largest power-of-two subset of the surviving ranks and
        restarts (the decomposition changes, so partial phase work cannot
        carry over).  When the last rank dies the error propagates.

        Returns ``(out, report)`` — the transform result plus the
        resilience account (retries, re-plans recorded as downgrades).
        """
        out, report = self.execute_batch(
            [x], fault_injector, retry_policy, report, profiler
        )
        return out[0], report

    def execute_batch(
        self,
        xs,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        report: ResilienceReport | None = None,
        profiler: Profiler | None = None,
    ) -> tuple[np.ndarray, ResilienceReport]:
        """Per-rank batches: N same-shape cubes through one shared plan.

        Every entry reuses this plan's slab decomposition (and, with
        faults injected, the resilient re-planning of
        :meth:`execute_resilient` — a rank lost on entry ``i`` stays lost
        for ``i+1``..., so the shrunken decomposition is amortized over
        the remainder of the batch).  Returns the stacked transforms plus
        the shared resilience account.

        An optional :class:`repro.obs.Profiler` receives one synthetic
        span per rank phase (XY kernels, the host-staged all-to-all, Z
        kernels) laid out on the estimator's clock, plus replan/entry
        counters — the rank model has no device simulator to trace, so
        this is how the distributed path lands on the same Chrome trace
        as everything else.
        """
        report = report or ResilienceReport()
        policy = retry_policy or RetryPolicy()
        entries = xs if isinstance(xs, np.ndarray) and xs.ndim == 4 else list(xs)
        plan: MultiGpuFFT3D = self
        outs = []
        clock = 0.0
        for idx, x in enumerate(entries):
            while True:
                try:
                    outs.append(
                        plan._execute_ranks(x, fault_injector, policy, report)
                    )
                    if profiler is not None:
                        clock = plan._emit_entry_spans(profiler.tracer, clock, idx)
                        profiler.metrics.counter("multigpu.entries", "entries").inc()
                    break
                except DeviceLostError:
                    survivors = plan.n_gpus - 1
                    report.device_resets += 1
                    if survivors < 1:
                        raise
                    new_g = _largest_pow2(survivors)
                    report.downgrades.append(f"replan:{plan.n_gpus}->{new_g} ranks")
                    if profiler is not None:
                        profiler.metrics.counter("multigpu.replans", "events").inc()
                    plan = MultiGpuFFT3D(plan.n, new_g, plan.device, plan.precision)
        n = self.n
        dtype = np.complex64 if self.precision == "single" else np.complex128
        if not outs:
            return np.empty((0, n, n, n), dtype), report
        return np.stack(outs), report

    # ------------------------------------------------------------------

    def estimate_batch(
        self, n_batch: int, memsystem: MemorySystem | None = None
    ) -> MultiGpuBatchEstimate:
        """Pipelined batch estimate: exchange overlapped with compute."""
        if n_batch < 0:
            raise ValueError("n_batch must be non-negative")
        return MultiGpuBatchEstimate(self.estimate(memsystem), n_batch)

    def estimate(self, memsystem: MemorySystem | None = None) -> MultiGpuEstimate:
        """Predicted wall time (all GPUs run concurrently)."""
        n, g = self.n, self.n_gpus
        ms = memsystem or MemorySystem(self.device)
        single = estimate_fft3d(self.device, n, self.precision, ms)
        if g == 1:
            return MultiGpuEstimate(
                device=self.device.name,
                n_gpus=1,
                n=n,
                xy_seconds=sum(t.seconds for t in single.steps[2:]),
                exchange_seconds=0.0,
                z_seconds=sum(t.seconds for t in single.steps[:2]),
            )

        # Per-GPU phase 1: Y (steps 3+4 analog) and X (step 5 analog) on
        # a 1/g slab — memory-bound kernels scale with their data.
        xy = sum(t.seconds for t in single.steps[2:]) / g

        # Per-GPU phase 3: Z transforms over a 1/g pencil block.
        z = sum(t.seconds for t in single.steps[:2]) / g

        # Exchange: every GPU downloads its slab minus the part it keeps
        # ((g-1)/g of it) and uploads the same amount; transfers on
        # distinct cards overlap, the host bus serializes uploads against
        # downloads of the same data volume.
        link = link_for(self.device.pcie)
        slab_bytes = n * n * self.slab_nz * self._el
        moved = slab_bytes * (g - 1) / g
        exchange = link.transfer_time(int(moved), "d2h") + link.transfer_time(
            int(moved), "h2d"
        )
        return MultiGpuEstimate(
            device=self.device.name,
            n_gpus=g,
            n=n,
            xy_seconds=xy,
            exchange_seconds=exchange,
            z_seconds=z,
        )

    def scaling_curve(self, gpu_counts=(1, 2, 4, 8)) -> dict[int, MultiGpuEstimate]:
        """Strong-scaling estimates for several GPU counts."""
        out = {}
        for g in gpu_counts:
            plan = MultiGpuFFT3D(self.n, g, self.device, self.precision)
            out[g] = plan.estimate()
        return out
