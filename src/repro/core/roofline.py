"""Roofline analysis of the five-step kernels.

The paper's title is a roofline statement: the 3-D FFT lives left of the
machine-balance ridge, so performance is bandwidth * arithmetic-intensity
and every design decision should buy bandwidth.  This module computes the
roofline coordinates of each kernel — arithmetic intensity (flops per
byte of DRAM traffic), the roof it hits, and the headroom — and of the
whole transform, quantifying "bandwidth intensive" precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import estimate_fft3d
from repro.core.five_step import FiveStepPlan
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import DeviceSpec

__all__ = ["RooflinePoint", "kernel_rooflines", "ridge_intensity"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel on the roofline plot."""

    kernel: str
    #: Arithmetic intensity, flops per DRAM byte.
    intensity: float
    #: Achieved GFLOPS (from the timing model).
    achieved_gflops: float
    #: Bandwidth roof at this intensity (intensity * sustained GB/s).
    memory_roof_gflops: float
    #: The device's compute roof.
    compute_roof_gflops: float

    @property
    def roof_gflops(self) -> float:
        """The binding roof (min of the two ceilings)."""
        return min(self.memory_roof_gflops, self.compute_roof_gflops)

    @property
    def bound(self) -> str:
        return (
            "memory"
            if self.memory_roof_gflops <= self.compute_roof_gflops
            else "compute"
        )

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the binding roof."""
        return self.achieved_gflops / self.roof_gflops


def ridge_intensity(device: DeviceSpec, memsystem: MemorySystem | None = None) -> float:
    """Machine balance: flops/byte where the two roofs cross.

    Uses the *sustained* stream bandwidth (the realistic roof), not pins.
    """
    ms = memsystem or MemorySystem(device)
    return device.peak_gflops * 1e9 / ms.sequential_bandwidth()


def kernel_rooflines(
    device: DeviceSpec,
    n: int = 256,
    memsystem: MemorySystem | None = None,
) -> list[RooflinePoint]:
    """Roofline coordinates of each five-step kernel plus the whole FFT."""
    ms = memsystem or MemorySystem(device)
    plan = FiveStepPlan((n, n, n))
    est = estimate_fft3d(device, n, memsystem=ms)
    sustained = ms.sequential_bandwidth()

    points = []
    for info, timing in zip(plan.steps(), est.steps):
        intensity = timing.flops / timing.bytes_moved
        points.append(
            RooflinePoint(
                kernel=info.name,
                intensity=intensity,
                achieved_gflops=timing.gflops,
                memory_roof_gflops=intensity * sustained / 1e9,
                compute_roof_gflops=device.peak_gflops,
            )
        )

    # The whole transform: nominal flops over total DRAM traffic.
    total_bytes = sum(t.bytes_moved for t in est.steps)
    intensity = est.nominal_flops / total_bytes
    points.append(
        RooflinePoint(
            kernel=f"whole {n}^3 transform",
            intensity=intensity,
            achieved_gflops=est.on_board_gflops,
            memory_roof_gflops=intensity * sustained / 1e9,
            compute_roof_gflops=device.peak_gflops,
        )
    )
    return points
