"""The five simulated CUDA kernels of the bandwidth-intensive 3-D FFT.

Each kernel exists twice, deliberately coupled:

* a **functional body** — vectorized NumPy that performs exactly the data
  movement and butterflies of the CUDA original (verified against
  ``numpy.fft`` in the test suite), and
* a **KernelSpec builder** — the launch geometry, register/shared-memory
  footprint, instruction mix and memory access patterns the performance
  simulator times.

Kernel inventory (Section 3.2):

* steps 1-4: coarse-grained multirow 16-point (8-point for 64^3/128^3)
  FFTs, one transform per thread, 51-52 registers, no shared memory,
  twiddles in registers;
* step 5: fine-grained shared-memory transform along X, 64 threads per
  256-point transform, twiddles via texture, padded real/imag exchanges.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import FiveDimView, TRANSACTION_BYTES
from repro.fft.codelets import CODELET_SIZES, codelet_fft
from repro.fft.cooley_tukey import fft_pow2
from repro.gpu.access import BurstPattern
from repro.gpu.isa import InstructionMix
from repro.gpu.kernel import KernelSpec, MemoryAccessSpec
from repro.gpu.sharedmem import SharedMemoryModel, padded_stride
from repro.gpu.specs import DeviceSpec
from repro.util.indexing import ilog2

__all__ = [
    "fft_codelet_axis0",
    "multirow_half1",
    "multirow_half2",
    "shared_x_transform",
    "multirow_step_spec",
    "shared_x_step_spec",
    "MULTIROW_REGISTERS",
    "SHARED_X_REGISTERS",
]

#: Register footprint of the 16-point coarse-grained kernel (Section 3.1:
#: "we implement the kernels of 16-point FFT with 51 or 52 registers").
MULTIROW_REGISTERS = {2: 16, 4: 20, 8: 30, 16: 52, 32: 68, 64: 132}

#: Register footprint per thread of the fine-grained shared-memory kernel
#: (Section 3.2: "each thread uses only eight registers to store four
#: complex numbers" plus addressing state).
SHARED_X_REGISTERS = 16

#: Threads per block used throughout (the paper's Tables 3/4/6/7 config).
THREADS_PER_BLOCK = 64


# ----------------------------------------------------------------------
# Functional bodies
# ----------------------------------------------------------------------

def fft_codelet_axis0(
    state: np.ndarray,
    inverse: bool = False,
    *,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """FFT along axis 0 of an N-D array (vectorized batch).

    Dispatches to a straight-line codelet when one exists; oversized
    factors (the out-of-core slabs' 32-point half) recurse through the
    four-step engine.

    With ``out``/``ws`` (keyword-only), the transform is evaluated through
    strided views — no staging ``ascontiguousarray`` copy on the way in and
    results written straight into ``out`` (which may itself be a transpose
    view, fusing the transform into a rearrangement write).  Values are
    identical to the seed path; ``out`` must not alias ``state``.
    """
    if (out is None and ws is None) or not np.iscomplexobj(state):
        moved = np.ascontiguousarray(np.moveaxis(state, 0, -1))
        if moved.shape[-1] in CODELET_SIZES:
            res = codelet_fft(moved, inverse=inverse)
        else:
            res = fft_pow2(moved, inverse=inverse)
        res = np.moveaxis(res, -1, 0)
        if out is None:
            return res
        np.copyto(out, res)
        return out
    moved_in = np.moveaxis(state, 0, -1)
    if out is None:
        out = ws.acquire(state.shape, state.dtype)
    moved_out = np.moveaxis(out, 0, -1)
    if moved_in.shape[-1] in CODELET_SIZES:
        codelet_fft(moved_in, inverse=inverse, out=moved_out, ws=ws)
    else:
        fft_pow2(moved_in, inverse=inverse, out=moved_out, ws=ws)
    return out


def multirow_half1(
    state: np.ndarray,
    twiddle: np.ndarray,
    inverse: bool = False,
    *,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Steps 1 and 3: first half of the split transform (FFT256_1).

    Transforms axis 0 (the slow digit of the split axis), applies the
    inter-factor twiddles, and lands the result in the pattern-A layout:
    C axes ``(d0, d1, d2, d3, x) -> (d1, d2, d3, k, x)``.

    On the pooled path the twiddle multiply is fused into the pattern-A
    transpose write (one pass instead of multiply + transpose copy).
    """
    if state.ndim != 5:
        raise ValueError(f"expected a 5-D state, got shape {state.shape}")
    if twiddle.shape != (state.shape[0], state.shape[1]):
        raise ValueError(
            f"twiddle shape {twiddle.shape} does not match state "
            f"{state.shape[:2]}"
        )
    w = np.conj(twiddle) if inverse else twiddle
    if (out is None and ws is None) or not np.iscomplexobj(state):
        t = fft_codelet_axis0(state, inverse)
        t = t * w[:, :, None, None, None].astype(t.dtype, copy=False)
        res = np.ascontiguousarray(t.transpose(1, 2, 3, 0, 4))
        if out is None:
            return res
        np.copyto(out, res)
        return out
    d0, d1, d2, d3, nx = state.shape
    t = fft_codelet_axis0(state, inverse, ws=ws)
    wb = w[:, :, None, None, None].astype(t.dtype, copy=False)
    if out is None:
        out = ws.acquire((d1, d2, d3, d0, nx), t.dtype)
    # out[i1,i2,i3,i0,ix] = t[i0,i1,i2,i3,ix] * w[i0,i1]: the multiply
    # writes through the transpose view, fusing pattern-A rearrangement.
    np.multiply(t, wb, out=out.transpose(3, 0, 1, 2, 4))
    if ws is not None:
        ws.release(t)
    return out


def multirow_half2(
    state: np.ndarray,
    inverse: bool = False,
    *,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Steps 2 and 4: second half of the split transform (FFT256_2).

    Transforms axis 0 (the fast digit) and lands in the pattern-B layout:
    C axes ``(d0, d1, d2, d3, x) -> (d1, d2, k, d3, x)``.

    On the pooled path the codelet writes through the pattern-B transpose
    view of ``out`` directly — the rearrangement costs no extra pass.
    """
    if state.ndim != 5:
        raise ValueError(f"expected a 5-D state, got shape {state.shape}")
    if (out is None and ws is None) or not np.iscomplexobj(state):
        t = fft_codelet_axis0(state, inverse)
        res = np.ascontiguousarray(t.transpose(1, 2, 0, 3, 4))
        if out is None:
            return res
        np.copyto(out, res)
        return out
    d0, d1, d2, d3, nx = state.shape
    if out is None:
        out = ws.acquire((d1, d2, d0, d3, nx), state.dtype)
    fft_codelet_axis0(state, inverse, out=out.transpose(2, 0, 1, 3, 4), ws=ws)
    return out


def shared_x_transform(
    state: np.ndarray,
    inverse: bool = False,
    *,
    out: np.ndarray | None = None,
    ws=None,
) -> np.ndarray:
    """Step 5: in-place transform along the contiguous X axis.

    The CUDA original computes each X line with 64 cooperating threads via
    shared memory; functionally it is a batched power-of-two FFT along the
    last axis.
    """
    if out is None and ws is None:
        return fft_pow2(np.ascontiguousarray(state), inverse=inverse)
    return fft_pow2(state, inverse=inverse, out=out, ws=ws)


# ----------------------------------------------------------------------
# KernelSpec builders
# ----------------------------------------------------------------------

def _grid_blocks(device: DeviceSpec) -> int:
    """Paper launch configuration: 3 blocks per SM (42 on GT, 48 on GTX)."""
    return 3 * device.n_sm


def multirow_step_spec(
    device: DeviceSpec,
    view_in: FiveDimView,
    view_out: FiveDimView,
    star_out_dim: int,
    base_in: int,
    base_out: int,
    with_twiddle: bool,
    name: str,
) -> KernelSpec:
    """Spec for one of steps 1-4 (coarse-grained multirow pass).

    The read is always the pattern-D stream (star at Fortran dim 5 of the
    input view); the write lands at ``star_out_dim`` (2 for pattern A,
    3 for pattern B).
    """
    radix = view_in.dims[4]
    if radix not in MULTIROW_REGISTERS:
        raise ValueError(f"no multirow kernel for radix {radix}")
    read = view_in.star_burst(5, base_in)
    write = view_out.star_burst(star_out_dim, base_out)

    total = 1
    for d in view_in.dims:
        total *= d
    work_items = total // radix

    flops = 5.0 * radix * ilog2(radix)
    if with_twiddle:
        flops += 6.0 * radix  # one complex multiply per output point
    mix = InstructionMix(
        flops=flops,
        # Per transform: 2*radix global ld/st issues + index arithmetic.
        other_ops=2.0 * radix,
    )
    return KernelSpec(
        name=name,
        grid_blocks=_grid_blocks(device),
        threads_per_block=THREADS_PER_BLOCK,
        regs_per_thread=MULTIROW_REGISTERS[radix],
        shared_bytes_per_block=0,
        work_items=work_items,
        mix=mix,
        memory=(MemoryAccessSpec(read), MemoryAccessSpec(write)),
        double_buffered=True,
    )


def shared_x_shared_bytes(nx: int) -> int:
    """Shared-memory allocation of the step-5 kernel, bytes per block.

    One padded real array of ``nx`` floats (real and imaginary parts are
    exchanged in two passes to halve the allocation, Section 3.2).
    """
    rows = nx // 16
    return padded_stride(16) * rows * 4


def shared_x_step_spec(
    device: DeviceSpec,
    nx: int,
    batch: int,
    base_in: int = 0,
    base_out: int | None = None,
    name: str = "step5-sharedX",
    padded: bool = True,
    twiddles_via_texture: bool = True,
) -> KernelSpec:
    """Spec for step 5 (fine-grained shared-memory X transform).

    ``base_out=None`` means in-place (Table 7); Table 6's conventional
    1-D steps use the same kernel out-of-place.  ``padded=False`` models
    the bank-conflicted layout for the padding ablation.
    """
    ilog2(nx)
    if nx * 8 % TRANSACTION_BYTES != 0:
        raise ValueError("X line must be a multiple of 128 bytes")
    line_txns = nx * 8 // TRANSACTION_BYTES
    read = BurstPattern(
        base=base_in,
        scan_dims=(batch,),
        scan_strides=(nx * 8,),
        burst_len=line_txns,
        burst_stride=TRANSACTION_BYTES,
        transaction_bytes=TRANSACTION_BYTES,
        name="step5-read",
    )
    write = BurstPattern(
        base=base_in if base_out is None else base_out,
        scan_dims=(batch,),
        scan_strides=(nx * 8,),
        burst_len=line_txns,
        burst_stride=TRANSACTION_BYTES,
        transaction_bytes=TRANSACTION_BYTES,
        name="step5-write",
    )

    # Radix-4 stages with shared exchanges between them; each exchange
    # moves every point through shared memory in two (real/imag) passes:
    # store + load per half = 4 issues per point per exchange.
    stages = max(1, (ilog2(nx) + 1) // 2)
    exchanges = stages - 1
    conflict = 1 if padded else 16
    shared = SharedMemoryModel(conflict_degree=conflict)
    shared_ops = shared.exchange_cost(exchanges * 4 * nx)
    texture_ops = nx // 4 if twiddles_via_texture else 0
    mix = InstructionMix(
        flops=5.0 * nx * ilog2(nx),
        shared_ops=float(shared_ops),
        other_ops=2.0 * line_txns * 16 / 4 + texture_ops,
    )
    return KernelSpec(
        name=name,
        grid_blocks=_grid_blocks(device),
        threads_per_block=THREADS_PER_BLOCK,
        regs_per_thread=SHARED_X_REGISTERS,
        shared_bytes_per_block=shared_x_shared_bytes(nx),
        work_items=batch,
        mix=mix,
        memory=(MemoryAccessSpec(read), MemoryAccessSpec(write)),
        double_buffered=True,
    )
