"""Twiddle-factor storage options and their costs (Section 3.2).

"For the twiddle factors, we can use one of the following four options:
(1) registers ... the fastest.  (2) constant memory ... only a 32-bit data
in each cycle.  (3) texture memory ... a good option to save the number of
registers.  (4) calculate each time ... additional processor cycles.
Considering these pros and cons, we selected texture memory for step 5,
and registers for the other steps."

The cost model exposes, per twiddle *use* (one complex factor consumed by
one thread): extra registers held, extra issue slots, and whether the
fetch serializes across the half-warp.  The ablation bench applies it to
the step-5 kernel and reproduces the paper's choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.gpu.specs import DeviceSpec

__all__ = ["TwiddleOption", "TwiddleCost", "TWIDDLE_OPTIONS", "twiddle_cost"]


class TwiddleOption(str, Enum):
    """The four storage options of Section 3.2."""

    REGISTERS = "registers"
    CONSTANT = "constant"
    TEXTURE = "texture"
    COMPUTE = "compute"


TWIDDLE_OPTIONS = tuple(TwiddleOption)


@dataclass(frozen=True)
class TwiddleCost:
    """Per-use resource cost of a twiddle storage option."""

    option: TwiddleOption
    #: Registers held per resident twiddle value (per thread).
    regs_per_value: float
    #: Issue slots per fetch of one complex factor.
    issue_slots_per_use: float

    def extra_registers(self, n_values: int) -> int:
        """Registers a thread spends keeping ``n_values`` factors live."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        return int(round(self.regs_per_value * n_values))

    def extra_issue(self, n_uses: float) -> float:
        """Issue slots consumed fetching factors ``n_uses`` times."""
        if n_uses < 0:
            raise ValueError("n_uses must be non-negative")
        return self.issue_slots_per_use * n_uses


def twiddle_cost(option: TwiddleOption, device: DeviceSpec) -> TwiddleCost:
    """Cost table for ``option`` on a G80-class device.

    * registers: 2 registers per complex value, zero fetch cost;
    * constant memory: no registers, but the 32-bit broadcast port means a
      64-bit complex load with per-thread-distinct addresses serializes
      across the half-warp -> ~2 x 16 slots per use in the worst case
      (modeled as 8, assuming partial address sharing);
    * texture: no registers, one TEX issue per use (cache-resident table);
    * compute: no registers, sin+cos via SFU ~ 16 slots per complex value.
    """
    if option == TwiddleOption.REGISTERS:
        return TwiddleCost(option, regs_per_value=2.0, issue_slots_per_use=0.0)
    if option == TwiddleOption.CONSTANT:
        return TwiddleCost(option, regs_per_value=0.0, issue_slots_per_use=8.0)
    if option == TwiddleOption.TEXTURE:
        return TwiddleCost(option, regs_per_value=0.0, issue_slots_per_use=1.0)
    if option == TwiddleOption.COMPUTE:
        return TwiddleCost(option, regs_per_value=0.0, issue_slots_per_use=16.0)
    raise ValueError(f"unknown twiddle option {option!r}")
