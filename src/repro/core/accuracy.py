"""Numerical-accuracy measurement for the transform engines.

Section 4.5 of the paper flags precision as the open concern of the G80
generation ("currently available CUDA GPUs support only single precision
operations, they are not useful for applications that require higher
accuracy").  This module quantifies exactly that for every engine in the
package: relative forward error against a double-precision reference and
round-trip (forward-then-inverse) error, as functions of size and
precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.five_step import FiveStepPlan
from repro.fft.plan import PlanND

__all__ = ["AccuracyReport", "measure_accuracy", "accuracy_sweep"]


@dataclass(frozen=True)
class AccuracyReport:
    """Error metrics of one engine at one size/precision."""

    engine: str
    shape: tuple[int, int, int]
    precision: str
    #: max |X - X_ref| / max |X_ref| against a float64 reference forward
    #: transform of the same data.
    forward_error: float
    #: max |IFFT(FFT(x)) - x| over unit-scale data.
    roundtrip_error: float

    def within_single_precision_budget(self) -> bool:
        """Error consistent with float32 rounding (~eps * log2 N growth)."""
        n_ops = np.log2(max(np.prod(self.shape), 2))
        budget = 1.2e-7 * n_ops * 8
        return self.forward_error < budget and self.roundtrip_error < budget * 10


_ENGINES: dict[str, Callable] = {
    "five_step": lambda shape, precision: FiveStepPlan(shape, precision=precision),
    "host_plan": lambda shape, precision: PlanND(shape, precision=precision),
}


def measure_accuracy(
    engine: str,
    shape: tuple[int, int, int] | int = 64,
    precision: str = "single",
    seed: int = 0,
) -> AccuracyReport:
    """Measure one engine's forward and round-trip error."""
    if isinstance(shape, int):
        shape = (shape, shape, shape)
    try:
        factory = _ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; available: {sorted(_ENGINES)}"
        ) from None
    rng = np.random.default_rng(seed)
    x64 = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ref = np.fft.fftn(x64)
    ref_scale = np.abs(ref).max()

    plan = factory(shape, precision)
    dtype = np.complex64 if precision == "single" else np.complex128
    x = x64.astype(dtype)
    fwd = plan.execute(x)
    forward_error = float(np.abs(fwd.astype(np.complex128) - ref).max() / ref_scale)

    if isinstance(plan, PlanND):
        back = plan.execute(fwd, inverse=True)  # backward norm: 1/N applied
    else:
        back = plan.execute(fwd, inverse=True) / x.size
    roundtrip_error = float(np.abs(back.astype(np.complex128) - x64).max())
    return AccuracyReport(
        engine=engine,
        shape=tuple(shape),
        precision=precision,
        forward_error=forward_error,
        roundtrip_error=roundtrip_error,
    )


def accuracy_sweep(
    sizes=(16, 32, 64),
    engines=("five_step", "host_plan"),
    precisions=("single", "double"),
    seed: int = 0,
) -> list[AccuracyReport]:
    """Accuracy of every engine/size/precision combination."""
    return [
        measure_accuracy(engine, n, precision, seed)
        for engine in engines
        for n in sizes
        for precision in precisions
    ]
