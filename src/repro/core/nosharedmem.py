"""The no-shared-memory ablation of the X-axis transform (Table 9).

"Without shared memory, we are forced to use global memory for data
exchange between threads ... the transforms for X axis are also divided
into two steps of 16-point FFTs ... we must either utilize texture memory
or non-coalesced memory access for the second step" (Section 4.3).

Three variants of the X-axis transform at 256^3:

* ``shared``       — the real step 5 (one kernel, shared-memory exchange);
* ``texture``      — two 16-point passes, second reading via texture;
* ``non_coalesced``— two 16-point passes, second with serialized loads.

The Y&Z steps are identical in all variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import estimate_fft3d
from repro.core.kernels import MULTIROW_REGISTERS, THREADS_PER_BLOCK
from repro.gpu.access import BurstPattern
from repro.gpu.isa import InstructionMix
from repro.gpu.kernel import KernelSpec, MemoryAccessSpec
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import DeviceSpec
from repro.gpu.timing import time_kernel
from repro.util.indexing import ilog2

__all__ = ["NoSharedMemoryVariant", "estimate_x_axis_variants"]


@dataclass(frozen=True)
class NoSharedMemoryVariant:
    """Times of one Table 9 row, seconds."""

    name: str
    x_axis_first: float
    x_axis_second: float
    yz_axes: float

    @property
    def x_axis_total(self) -> float:
        return self.x_axis_first + self.x_axis_second

    @property
    def total(self) -> float:
        return self.x_axis_total + self.yz_axes


def _x_pass_spec(
    device: DeviceSpec,
    n: int,
    batch: int,
    second_pass: bool,
    via_texture: bool,
    name: str,
) -> KernelSpec:
    """One 16-point global-exchange pass over the X lines.

    First pass: each thread reads its 16 points at stride ``(n/16)*8``
    within the 2 KB line — adjacent threads stay coalescable.  Second
    pass: the digit-reversed gather has stride 16 elements (128 B), which
    cannot coalesce; it goes through texture or serialized loads.
    """
    r = 16
    line_bytes = n * 8
    if second_pass:
        # Digit-reversed gather: thread t reads x = 16t + j, so one load
        # instruction touches 16 addresses 128 B apart within the 2 KB
        # line — 16 serialized 32-byte transactions (4x traffic) unless
        # routed through the texture cache.
        if via_texture:
            read = BurstPattern(
                base=0,
                scan_dims=(batch,),
                scan_strides=(line_bytes,),
                burst_len=line_bytes // 128,
                burst_stride=128,
                transaction_bytes=128,
                name=f"{name}-gather",
            )
        else:
            read = BurstPattern(
                base=0,
                scan_dims=(r, batch),
                scan_strides=(8, line_bytes),
                burst_len=r,
                burst_stride=128,
                transaction_bytes=32,
                name=f"{name}-gather",
            )
    else:
        # Strided-but-dense read: the 16 points of one transform tile a
        # contiguous 2 KB line across the half-warp.
        read = BurstPattern(
            base=0,
            scan_dims=(batch,),
            scan_strides=(line_bytes,),
            burst_len=line_bytes // 128,
            burst_stride=128,
            transaction_bytes=128,
            name=f"{name}-read",
        )
    if second_pass and not via_texture:
        # Same scan space as the serialized gather: one coalesced write
        # transaction per load round.
        write = BurstPattern(
            base=batch * line_bytes,
            scan_dims=(r, batch),
            scan_strides=(128, line_bytes),
            burst_len=1,
            burst_stride=128,
            transaction_bytes=128,
            name=f"{name}-write",
        )
    else:
        write = BurstPattern(
            base=batch * line_bytes,
            scan_dims=(batch,),
            scan_strides=(line_bytes,),
            burst_len=line_bytes // 128,
            burst_stride=128,
            transaction_bytes=128,
            name=f"{name}-write",
        )
    return KernelSpec(
        name=name,
        grid_blocks=3 * device.n_sm,
        threads_per_block=THREADS_PER_BLOCK,
        regs_per_thread=MULTIROW_REGISTERS[r],
        shared_bytes_per_block=0,
        work_items=batch * n // r,
        mix=InstructionMix(flops=5.0 * r * ilog2(r) + 6.0 * r, other_ops=2.0 * r),
        memory=(
            MemoryAccessSpec(read, via_texture=second_pass and via_texture),
            MemoryAccessSpec(write),
        ),
        double_buffered=True,
    )


def estimate_x_axis_variants(
    device: DeviceSpec, n: int = 256, memsystem: MemorySystem | None = None
) -> dict[str, NoSharedMemoryVariant]:
    """The three Table 9 rows for an ``n^3`` transform on ``device``."""
    ms = memsystem or MemorySystem(device)
    batch = n * n
    est = estimate_fft3d(device, (n, n, n), memsystem=ms)
    yz = sum(t.seconds for t in est.steps[:4])
    shared_t = est.steps[4].seconds

    def timed(spec: KernelSpec) -> float:
        # These passes stream whole X lines (sequential-dominated), so the
        # strided-kernel derate does not apply.
        return time_kernel(device, spec, ms).seconds

    first = timed(_x_pass_spec(device, n, batch, False, False, "xpass1"))
    tex = timed(_x_pass_spec(device, n, batch, True, True, "xpass2-tex"))
    ser = timed(_x_pass_spec(device, n, batch, True, False, "xpass2-ser"))

    return {
        "shared": NoSharedMemoryVariant("Shared memory", shared_t, 0.0, yz),
        "texture": NoSharedMemoryVariant("Texture memory", first, tex, yz),
        "non_coalesced": NoSharedMemoryVariant("Not coalesced", first, ser, yz),
    }
