"""Slab and pencil decomposition math for distributed 3-D FFTs.

A transform too large for one card is split across nodes the way the
Wafer-Scale FFT literature (and every production distributed FFT since
Swarztrauber) does it:

* **slab** — 1-D decomposition over Z: node ``k`` owns a contiguous
  ``nz/p`` slab, transforms X and Y locally, then one all-to-all
  redistributes to Y-slabs so Z becomes local for the final stage.
  Minimum exchanges (one), but parallelism caps at ``min(nz, ny)``.
* **pencil** — 2-D decomposition over a ``pr x pc`` node grid: node
  ``(i, j)`` owns an X-pencil block, and each of the three 1-D stages is
  separated by an all-to-all within one axis of the node grid (two
  exchanges total).  Scales to ``nz * ny`` nodes and moves less data per
  exchange partner.

This module is the *math* — block ranges, divisibility validation and
per-pair exchange volumes — shared by the functional executor
(:mod:`repro.cluster.distributed`) and the cost model
(:func:`repro.core.estimator.estimate_distributed_fft3d`).  Keeping it
in :mod:`repro.core` keeps the decomposition story next to the
single-card plan it generalizes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DECOMPOSITIONS",
    "block_ranges",
    "pencil_grid",
    "SlabDecomposition",
    "PencilDecomposition",
    "decomposition_for",
]

#: The supported decomposition kinds.
DECOMPOSITIONS = ("slab", "pencil")


def block_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """``parts`` contiguous, equal ``[start, stop)`` ranges covering ``n``.

    Distributed stages require exact divisibility — ragged blocks would
    make exchange volumes rank-dependent and the timing model dishonest.
    """
    if parts < 1:
        raise ValueError("parts must be at least 1")
    if n % parts != 0:
        raise ValueError(f"{parts} nodes cannot evenly split an axis of {n}")
    step = n // parts
    return [(k * step, (k + 1) * step) for k in range(parts)]


def pencil_grid(p: int) -> tuple[int, int]:
    """The near-square ``(pr, pc)`` node grid for ``p`` nodes.

    ``p`` must be a power of two (matching every grid axis in the
    five-step world); the split puts the larger factor on columns so a
    non-square grid favors the X axis, which is never decomposed.
    """
    if p < 1 or (p & (p - 1)) != 0:
        raise ValueError("node count must be a power of two")
    k = p.bit_length() - 1
    pr = 1 << (k // 2)
    return pr, p // pr


@dataclass(frozen=True)
class SlabDecomposition:
    """One-axis split: Z-slabs in, Y-slabs out, one all-to-all between."""

    shape: tuple[int, int, int]
    n_nodes: int
    itemsize: int

    def __post_init__(self) -> None:
        nz, ny, _ = self.shape
        block_ranges(nz, self.n_nodes)
        block_ranges(ny, self.n_nodes)

    @property
    def kind(self) -> str:
        """The decomposition kind slug (``slab``)."""
        return "slab"

    @property
    def z_slabs(self) -> list[tuple[int, int]]:
        """Each node's Z range in the input (XY-stage) layout."""
        return block_ranges(self.shape[0], self.n_nodes)

    @property
    def y_slabs(self) -> list[tuple[int, int]]:
        """Each node's Y range in the output (Z-stage) layout."""
        return block_ranges(self.shape[1], self.n_nodes)

    @property
    def exchange_bytes_per_pair(self) -> int:
        """Bytes one node sends one peer in the single all-to-all.

        Node ``k`` keeps the ``(z_k, y_k)`` corner of its slab and ships
        every other ``(z_k, y_j)`` block — ``nz/p * ny/p * nx`` elements
        per peer.
        """
        nz, ny, nx = self.shape
        p = self.n_nodes
        return (nz // p) * (ny // p) * nx * self.itemsize

    @property
    def exchange_phases(self) -> tuple[tuple[int, int], ...]:
        """``(group_size, bytes_per_pair)`` per all-to-all phase."""
        if self.n_nodes == 1:
            return ()
        return ((self.n_nodes, self.exchange_bytes_per_pair),)


@dataclass(frozen=True)
class PencilDecomposition:
    """Two-axis split over a ``pr x pc`` node grid, two all-to-alls.

    Stage layouts (node ``(i, j)``, X never decomposed across stages
    simultaneously with its transform):

    1. owns ``(nz/pr, ny/pc, nx)`` — transform X;
    2. exchange among the ``pc`` nodes of its grid row — now owns
       ``(nz/pr, ny, nx/pc)`` — transform Y;
    3. exchange among the ``pr`` nodes of its grid column — now owns
       ``(nz, ny/pr, nx/pc)`` — transform Z.
    """

    shape: tuple[int, int, int]
    n_nodes: int
    itemsize: int

    def __post_init__(self) -> None:
        pr, pc = self.grid
        nz, ny, nx = self.shape
        block_ranges(nz, pr)
        block_ranges(ny, pc)
        block_ranges(nx, pc)
        block_ranges(ny, pr)

    @property
    def kind(self) -> str:
        """The decomposition kind slug (``pencil``)."""
        return "pencil"

    @property
    def grid(self) -> tuple[int, int]:
        """The ``(pr, pc)`` node grid."""
        return pencil_grid(self.n_nodes)

    @property
    def exchange_phases(self) -> tuple[tuple[int, int], ...]:
        """``(group_size, bytes_per_pair)`` for the row and column phases.

        Row phase: ``(i, j) -> (i, j')`` ships the ``(nz/pr, ny/pc,
        nx/pc)`` sub-block; column phase: ``(i, j) -> (i', j)`` ships
        ``(nz/pr, ny/pr, nx/pc)``.  Groups along the other grid axis run
        their all-to-alls concurrently on disjoint node sets.
        """
        pr, pc = self.grid
        nz, ny, nx = self.shape
        phases: list[tuple[int, int]] = []
        if pc > 1:
            row_pair = (nz // pr) * (ny // pc) * (nx // pc) * self.itemsize
            phases.append((pc, row_pair))
        if pr > 1:
            col_pair = (nz // pr) * (ny // pr) * (nx // pc) * self.itemsize
            phases.append((pr, col_pair))
        return tuple(phases)


def decomposition_for(
    kind: str, shape: tuple[int, int, int], n_nodes: int, itemsize: int
):
    """Build the named decomposition (validating divisibility)."""
    if kind == "slab":
        return SlabDecomposition(shape, n_nodes, itemsize)
    if kind == "pencil":
        return PencilDecomposition(shape, n_nodes, itemsize)
    raise ValueError(f"unknown decomposition {kind!r}; known: {DECOMPOSITIONS}")
