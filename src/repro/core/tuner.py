"""Launch-configuration autotuner for the multirow step kernels.

The paper hand-tunes its kernels ("optimizing the number of threads and
registers through appropriate localization"; 51-52 registers so that 128
threads stay resident).  With the timing model in hand the search can be
automated: enumerate (radix, threads-per-block, grid size) candidates,
price each with the simulator, and return the fastest feasible
configuration.  The tests confirm the search lands on the paper's choice
— radix 16 at 64 threads/block — and the ablation bench prices the
alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import MULTIROW_REGISTERS, multirow_step_spec
from repro.core.patterns import FiveDimView
from repro.gpu.memsystem import MemorySystem
from repro.gpu.occupancy import occupancy
from repro.gpu.specs import DeviceSpec
from repro.gpu.timing import time_kernel
from repro.util.indexing import ilog2

__all__ = ["TuneCandidate", "TuneResult", "tune_multirow_step"]


@dataclass(frozen=True)
class TuneCandidate:
    """One evaluated configuration."""

    radix: int
    threads_per_block: int
    grid_blocks: int
    registers: int
    active_threads_per_sm: int
    #: Seconds for one full pass over the grid; None when the whole-axis
    #: transform needs a different pass count than this radix provides.
    seconds_per_transform_pass: float
    #: Passes needed to complete one 256-point axis with this radix.
    passes: int

    @property
    def axis_seconds(self) -> float:
        """Time to fully transform the split axis (all passes)."""
        return self.seconds_per_transform_pass * self.passes


@dataclass(frozen=True)
class TuneResult:
    """Search outcome: best candidate plus the whole frontier."""

    best: TuneCandidate
    candidates: tuple[TuneCandidate, ...]

    def by_radix(self, radix: int) -> TuneCandidate:
        """Best evaluated candidate using ``radix``."""
        matches = [c for c in self.candidates if c.radix == radix]
        if not matches:
            raise KeyError(f"no candidate with radix {radix}")
        return min(matches, key=lambda c: c.axis_seconds)


def tune_multirow_step(
    device: DeviceSpec,
    n: int = 256,
    radices=(4, 8, 16, 32, 64),
    thread_options=(32, 64, 128, 256),
    memsystem: MemorySystem | None = None,
) -> TuneResult:
    """Search configurations for one Y/Z axis of an ``n^3`` transform.

    A radix-``r`` kernel needs ``log_r(n)`` passes (the paper's radix 16
    needs two for 256); each pass moves the whole grid twice.  The cost
    of a candidate is passes x per-pass time, with per-pass time from the
    full trace-driven model (so register pressure, occupancy and access
    patterns all participate).
    """
    ilog2(n)
    ms = memsystem or MemorySystem(device)
    # The canonical 5-D view with the candidate radix as the star extent.
    candidates = []
    for radix in radices:
        if radix not in MULTIROW_REGISTERS or radix > n:
            continue
        # Passes to cover log2(n) bits with log2(radix) bits per pass.
        passes = -(-ilog2(n) // ilog2(radix))
        # Fixed total element count across radices: the last two extents
        # multiply to 4096 regardless of the candidate radix.  The output
        # view carries the transformed digit at dim 2 (pattern-A write).
        view = FiveDimView((n, 16, 16, 4096 // radix, radix))
        view_out = FiveDimView((n, radix, 16, 16, 4096 // radix))
        for threads in thread_options:
            if threads > device.max_threads_per_block:
                continue
            regs = MULTIROW_REGISTERS[radix]
            occ = occupancy(device, threads, regs)
            if occ.active_threads == 0:
                continue
            spec = multirow_step_spec(
                device,
                view,
                view_out,
                2,
                0,
                view.total_bytes,
                with_twiddle=True,
                name=f"tune-r{radix}-t{threads}",
            )
            # Override launch geometry for the candidate.
            from dataclasses import replace

            spec = replace(
                spec, threads_per_block=threads, grid_blocks=3 * device.n_sm
            )
            seconds = time_kernel(device, spec, ms).seconds
            candidates.append(
                TuneCandidate(
                    radix=radix,
                    threads_per_block=threads,
                    grid_blocks=spec.grid_blocks,
                    registers=regs,
                    active_threads_per_sm=occ.active_threads,
                    seconds_per_transform_pass=seconds,
                    passes=passes,
                )
            )
    if not candidates:
        raise ValueError("no feasible configuration found")
    best = min(candidates, key=lambda c: c.axis_seconds)
    return TuneResult(best=best, candidates=tuple(candidates))
