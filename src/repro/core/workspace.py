"""Shape/dtype-keyed arena of reusable host buffers.

The paper's thesis is that memory traffic, not arithmetic, is the scarce
resource.  The host-side reference pipeline used to contradict it: every
five-step execution allocated ten-plus fresh temporaries (transpose
staging copies, out-of-place codelet stacks, per-call twiddle casts), so
steady-state throughput was bound by the allocator and the kernel page
faults of freshly mmap'd arrays rather than by the transform itself.

:class:`Workspace` is the fix.  It is a per-plan arena: ``acquire`` hands
out a C-contiguous ``ndarray`` of the requested shape and dtype, reusing
a previously released buffer of the same footprint when one is free
(a *hit*) and allocating only on first use (a *miss*).  ``release``
returns a buffer — or any view of one, e.g. the ``moveaxis`` ping-pong
views the kernels trade in — to the free list.  After a warm-up
execution the five-step transform loop runs with zero net heap growth:
every large buffer it touches comes from, and goes back to, the arena.

Buffers are keyed by ``(shape, dtype)`` exactly; the five-step pipeline
cycles through a handful of fixed footprints per plan, so exact keying
gives a 100% steady-state hit rate without the fragmentation of a
size-class allocator.

Stats (hits / misses / bytes / live buffers) are kept locally and can be
folded into a :class:`~repro.obs.metrics.MetricsRegistry` so the serving
observability stack sees arena behaviour next to plan-cache and device
counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["Workspace", "WorkspaceStats"]


@dataclass(frozen=True)
class WorkspaceStats:
    """Point-in-time arena counters."""

    hits: int
    misses: int
    releases: int
    bytes_allocated: int
    live_buffers: int
    free_buffers: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Workspace:
    """Arena of preallocated, shape/dtype-keyed reusable buffers.

    Parameters
    ----------
    name:
        Label used for metrics registration; defaults to ``"ws"``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When given,
        ``workspace.hits`` / ``workspace.misses`` counters and a
        ``workspace.bytes`` gauge (labelled ``workspace=<name>``) are kept
        in lockstep with the local stats.
    """

    def __init__(self, name: str = "ws", metrics=None) -> None:
        self.name = name
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._live: dict[int, tuple] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._releases = 0
        self._bytes = 0
        self._hit_ctr = None
        self._miss_ctr = None
        self._bytes_gauge = None
        if metrics is not None:
            labels = {"workspace": name}
            self._hit_ctr = metrics.counter(
                "workspace.hits", "arena buffer reuses", labels=labels
            )
            self._miss_ctr = metrics.counter(
                "workspace.misses", "arena buffer allocations", labels=labels
            )
            self._bytes_gauge = metrics.gauge(
                "workspace.bytes", "B", labels=labels
            )

    # -- keying ---------------------------------------------------------

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    @staticmethod
    def _root(arr: np.ndarray) -> np.ndarray:
        """Walk a view chain back to the owning buffer."""
        while isinstance(arr.base, np.ndarray):
            arr = arr.base
        return arr

    # -- acquire / release ---------------------------------------------

    def acquire(self, shape, dtype) -> np.ndarray:
        """A C-contiguous buffer of ``shape``/``dtype``, pooled if possible.

        Contents are unspecified (the buffer is *not* zeroed); callers
        must fully overwrite it.  Pass the buffer — or any view of it —
        to :meth:`release` when done.

        The contiguity/dtype contract is *guaranteed*, not assumed: the
        compiled backends flat-view every buffer as raw floats
        (``reshape(-1).view(float)``), which silently computes garbage on
        a strided or wrong-dtype array, so a pooled pop that somehow
        violates the contract is discarded and replaced by a fresh
        allocation rather than handed out.
        """
        key = self._key(shape, dtype)
        want = np.dtype(dtype)
        with self._lock:
            stack = self._free.get(key)
            buf = stack.pop() if stack else None
            if buf is not None and not (
                buf.flags.c_contiguous
                and buf.dtype == want
                and buf.shape == key[0]
            ):
                # Contract violation (should be unreachable via the
                # public API): drop the tainted buffer, allocate fresh.
                self._bytes -= buf.nbytes
                buf = None
            if buf is not None:
                self._hits += 1
                if self._hit_ctr is not None:
                    self._hit_ctr.inc()
            else:
                buf = np.empty(key[0], dtype=want)
                self._misses += 1
                self._bytes += buf.nbytes
                if self._miss_ctr is not None:
                    self._miss_ctr.inc()
                if self._bytes_gauge is not None:
                    self._bytes_gauge.set(float(self._bytes))
            self._live[id(buf)] = key
        assert buf.flags.c_contiguous and buf.dtype == want
        return buf

    def release(self, arr: np.ndarray | None) -> None:
        """Return ``arr`` (or the buffer backing this view) to the arena.

        ``None`` and foreign arrays (not acquired here) are ignored, so
        callers can release unconditionally.
        """
        if arr is None:
            return
        root = self._root(arr)
        with self._lock:
            key = self._live.pop(id(root), None)
            if key is None:
                return
            self._releases += 1
            self._free.setdefault(key, []).append(root)

    def clear(self) -> None:
        """Drop every free buffer (live ones stay tracked)."""
        with self._lock:
            for stack in self._free.values():
                self._bytes -= sum(b.nbytes for b in stack)
            self._free.clear()
            if self._bytes_gauge is not None:
                self._bytes_gauge.set(float(self._bytes))

    # -- introspection --------------------------------------------------

    @property
    def stats(self) -> WorkspaceStats:
        with self._lock:
            return WorkspaceStats(
                hits=self._hits,
                misses=self._misses,
                releases=self._releases,
                bytes_allocated=self._bytes,
                live_buffers=len(self._live),
                free_buffers=sum(len(s) for s in self._free.values()),
            )

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"Workspace({self.name!r}, hits={s.hits}, misses={s.misses}, "
            f"bytes={s.bytes_allocated}, live={s.live_buffers})"
        )
