"""The bandwidth-intensive five-step 3-D FFT plan (Section 3.1).

Structure, for a ``(nz, ny, nx)`` single-precision grid:

    Step 1.  16-point FFTs — first half of the Z transforms  (read D, write A)
    Step 2.  16-point FFTs — second half of the Z transforms (read D, write B)
    Step 3.  Step 1 for Y                                    (read D, write A)
    Step 4.  Step 2 for Y                                    (read D, write B)
    Step 5.  full transforms along contiguous X (shared-memory kernel)

Every kernel performs only sequential/low-stride memory access on at least
one side (never a C/D x C/D pair), which is the paper's central idea.  The
split of each axis ``n = r1 * r2`` generalizes the paper's 16 x 16 for 256
to 16 x 8 for 128 and 8 x 8 for 64 ("our 3-D FFT algorithm does not depend
on problem size, although the program itself must be tailored for each
major sizes", Section 4.6).

Index algebra (verified against ``numpy.fft.fftn`` in the test suite): with
``Z = z1 + r1*z2`` the two halves compute the four-step lemma, and after
steps 1-4 the state's C-order axes are ``(k1z, k2z, k1y, k2y, x)``, whose
plain reshape back to 3-D is exactly the natural-order spectrum — the
transposes are absorbed into the pattern-A/B writes, never paid separately.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.kernels import (
    multirow_half1,
    multirow_half2,
    multirow_step_spec,
    shared_x_step_spec,
    shared_x_transform,
)
from repro.core.patterns import FiveDimView
from repro.fft.codelets import CODELET_SIZES
from repro.fft.twiddle import DEFAULT_CACHE, TwiddleCache
from repro.gpu.kernel import KernelSpec
from repro.gpu.specs import DeviceSpec
from repro.util.indexing import ilog2
from repro.util.units import flops_3d_fft
from repro.util.validation import as_complex_array

__all__ = ["split_axis", "resolve_plan_backend", "StepInfo", "FiveStepPlan"]


def split_axis(n: int) -> tuple[int, int]:
    """Split ``n = r1 * r2`` into two codelet factors, ``r1 >= r2``.

    ``r1`` is the fast-digit factor (transformed by the second half) and
    ``r2`` the slow-digit factor (first half).  256 -> (16, 16),
    128 -> (16, 8), 64 -> (8, 8).
    """
    ilog2(n)
    if n < 4:
        raise ValueError(
            f"the five-step algorithm needs Y/Z extents >= 4, got {n}"
        )
    best: tuple[int, int] | None = None
    for r1 in sorted(CODELET_SIZES, reverse=True):
        if n % r1 == 0 and (n // r1) in CODELET_SIZES:
            r2 = n // r1
            if best is None or abs(r1 - r2) < abs(best[0] - best[1]):
                best = (max(r1, r2), min(r1, r2))
    if best is None:
        # Axes beyond 256 (needed for the out-of-core slabs, where
        # ny = nz = 512) put the oversized factor in the first half; the
        # per-thread transform then needs more registers, which the
        # occupancy model charges honestly.
        r1 = max(CODELET_SIZES)
        if n % r1 != 0:
            raise ValueError(f"cannot split {n} into power-of-two factors")
        return (n // r1, r1) if n // r1 > r1 else (r1, n // r1)
    return best


def resolve_plan_backend(shape, backend: str = "numpy") -> str:
    """The concrete backend a plan for ``shape`` will execute with.

    Combines machine availability (:func:`repro.jit.resolve_backend`)
    with per-shape kernel coverage: a compiled backend is only kept when
    every axis-split radix has an emitted codelet and the X extent an
    emitted step-5 kernel; everything else degrades to ``"numpy"``.
    Used both by :class:`FiveStepPlan` and by the plan cache (which keys
    plans on the *resolved* backend, so ``"auto"`` and its concrete
    resolution share one entry).
    """
    if backend == "numpy":
        return "numpy"
    from repro import jit

    resolved = jit.resolve_backend(backend)
    if resolved == "numpy":
        return "numpy"
    if isinstance(shape, int):
        shape = (shape, shape, shape)
    nz, ny, nx = (int(n) for n in shape)
    try:
        rz1, rz2 = split_axis(nz)
        ry1, ry2 = split_axis(ny)
    except ValueError:
        return "numpy"
    if not jit.supports_shape(rz1, rz2, ry1, ry2, nx):
        return "numpy"
    return resolved


@dataclass(frozen=True)
class StepInfo:
    """One step of the plan: its spec builder plus a readable description."""

    index: int
    name: str
    pattern_pair: str  # e.g. "D->A"
    spec: Callable[[DeviceSpec], KernelSpec]


class FiveStepPlan:
    """Plan and execute the bandwidth-intensive 3-D FFT.

    Parameters
    ----------
    shape:
        ``(nz, ny, nx)``; each extent a power of two, ``nx >= 16`` (one
        X line must fill at least one coalesced transaction) and
        ``ny, nz >= 4``.
    precision:
        ``"single"`` (the paper's case) or ``"double"`` (the paper's
        stated future work; see DESIGN.md extensions).
    backend:
        ``"numpy"`` (reference, default), ``"numba"``, ``"cjit"`` or
        ``"auto"``.  Compiled backends degrade to ``"numpy"`` when the
        toolchain is absent or the shape has no emitted kernels; the
        concrete choice is :attr:`backend` (DESIGN.md §18).
    """

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        precision: str = "single",
        twiddles: TwiddleCache | None = None,
        backend: str = "numpy",
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        if len(shape) != 3:
            raise ValueError(f"shape must be 3-D, got {shape}")
        nz, ny, nx = (int(n) for n in shape)
        ilog2(nx)
        if nx < 16:
            raise ValueError(f"nx must be >= 16, got {nx}")
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        self.shape = (nz, ny, nx)
        self.precision = precision
        self.rz1, self.rz2 = split_axis(nz)
        self.ry1, self.ry2 = split_axis(ny)
        self._cache = twiddles or DEFAULT_CACHE
        self._el = 8 if precision == "single" else 16
        #: The backend as requested (before availability/shape resolution).
        self.backend_requested = backend
        #: The concrete backend executing this plan (``"numpy"`` when the
        #: request degraded); set once at construction so the plan-cache
        #: key and the executing code path can never disagree.
        self.backend = resolve_plan_backend(self.shape, backend)
        self._compiled = None
        self._compile_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def flops(self) -> float:
        """Nominal flop count (the paper's 15 N^3 log2 N convention)."""
        nz, ny, nx = self.shape
        return flops_3d_fft(nx, ny, nz)

    @property
    def total_bytes(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx * self._el

    def _views(self) -> list[FiveDimView]:
        """Fortran-dim views of the five intermediate layouts."""
        nz, ny, nx = self.shape
        a, b = self.rz2, self.rz1  # slow, fast Z factors
        c, d = self.ry2, self.ry1  # slow, fast Y factors
        el = self._el
        return [
            FiveDimView((nx, d, c, b, a), el),  # V0
            FiveDimView((nx, a, d, c, b), el),  # W1
            FiveDimView((nx, a, b, d, c), el),  # V1
            FiveDimView((nx, c, a, b, d), el),  # W2
            FiveDimView((nx, c, d, a, b), el),  # V2
        ]

    def steps(self) -> list[StepInfo]:
        """The five steps with their spec builders."""
        nz, ny, nx = self.shape
        v0, w1, v1, w2, v2 = self._views()
        buf0, buf1 = 0, self.total_bytes  # V and WORK base addresses

        def s1(dev: DeviceSpec) -> KernelSpec:
            return multirow_step_spec(
                dev, v0, w1, 2, buf0, buf1, with_twiddle=True, name="step1-fft16z"
            )

        def s2(dev: DeviceSpec) -> KernelSpec:
            return multirow_step_spec(
                dev, w1, v1, 3, buf1, buf0, with_twiddle=False, name="step2-fft16z"
            )

        def s3(dev: DeviceSpec) -> KernelSpec:
            return multirow_step_spec(
                dev, v1, w2, 2, buf0, buf1, with_twiddle=True, name="step3-fft16y"
            )

        def s4(dev: DeviceSpec) -> KernelSpec:
            return multirow_step_spec(
                dev, w2, v2, 3, buf1, buf0, with_twiddle=False, name="step4-fft16y"
            )

        def s5(dev: DeviceSpec) -> KernelSpec:
            return shared_x_step_spec(dev, nx, nz * ny, base_in=buf0)

        return [
            StepInfo(1, f"{self.rz2}-point FFTs (Z, first half)", "D->A", s1),
            StepInfo(2, f"{self.rz1}-point FFTs (Z, second half)", "D->B", s2),
            StepInfo(3, f"{self.ry2}-point FFTs (Y, first half)", "D->A", s3),
            StepInfo(4, f"{self.ry1}-point FFTs (Y, second half)", "D->B", s4),
            StepInfo(5, f"{nx}-point FFTs (X, shared memory)", "seq", s5),
        ]

    def step_specs(self, device: DeviceSpec) -> list[KernelSpec]:
        """The five KernelSpecs, built for ``device``."""
        return [s.spec(device) for s in self.steps()]

    # ------------------------------------------------------------------
    # Compiled backend
    # ------------------------------------------------------------------

    def ensure_compiled(self) -> float:
        """Compile/load this plan's backend kernels if not yet done.

        Returns the wall-clock seconds spent *by this call* (0.0 for the
        numpy backend or when already compiled) so the execution engines
        can charge warm-up as an observable ``jit.compile`` span.  A
        compile failure degrades the plan to the numpy backend instead
        of raising — clean fallback is the backend contract.
        """
        if self.backend == "numpy" or self._compiled is not None:
            return 0.0
        with self._compile_lock:
            if self._compiled is not None or self.backend == "numpy":
                return 0.0
            from repro import jit

            try:
                compiled, wall = jit.compile_plan(
                    self.backend,
                    self.shape,
                    self.precision,
                    self.rz1,
                    self.rz2,
                    self.ry1,
                    self.ry2,
                    twiddles=self._cache,
                )
            except Exception:
                self.backend = "numpy"
                return 0.0
            self._compiled = compiled
        from repro.core.plan_cache import PLAN_CACHE

        PLAN_CACHE.record_compile(self.backend, wall)
        return wall

    def _execute_compiled(self, x, inverse, workspace, out):
        """The compiled five-call sequence (same contract as the rest of
        :meth:`execute`: ``out`` may alias ``x``, ``workspace`` pools the
        ping-pong scratch)."""
        if out is None:
            out = np.empty(self.shape, x.dtype)
        if workspace is not None:
            work = workspace.acquire(self.shape, x.dtype)
        else:
            work = np.empty(self.shape, x.dtype)
        try:
            self._compiled.run(x, out, work, inverse)
        finally:
            if workspace is not None:
                workspace.release(work)
        return out

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------

    def execute(
        self,
        x: np.ndarray,
        inverse: bool = False,
        *,
        workspace=None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run the transform on the host; un-normalized both directions.

        Matches ``numpy.fft.fftn`` forward and ``ifftn * N`` inverse.

        ``workspace`` (a :class:`~repro.core.workspace.Workspace`) runs the
        pooled zero-allocation path: every intermediate comes from the
        arena and the twiddle multiplies are fused into the pattern-A/B
        rearrangement writes.  ``out`` (C-contiguous, plan shape/dtype)
        receives the spectrum in place.  Values are identical to the seed
        path either way.
        """
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, got {x.shape}")
        nz, ny, nx = self.shape
        wz = self._cache.four_step(self.rz1, self.rz2, self.precision)
        wy = self._cache.four_step(self.ry1, self.ry2, self.precision)

        if out is not None and not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        if out is not None and (out.shape != self.shape or out.dtype != x.dtype):
            raise ValueError(
                f"out must be {self.shape} {x.dtype}, got {out.shape} {out.dtype}"
            )
        if self.backend != "numpy":
            self.ensure_compiled()
        if self._compiled is not None:
            return self._execute_compiled(x, inverse, workspace, out)
        state = x.reshape(self.rz2, self.rz1, self.ry2, self.ry1, nx)
        if workspace is None:
            state = multirow_half1(state, wz, inverse)  # step 1
            state = multirow_half2(state, inverse)      # step 2
            state = multirow_half1(state, wy, inverse)  # step 3
            state = multirow_half2(state, inverse)      # step 4
            state = shared_x_transform(state, inverse)  # step 5
            res = state.reshape(self.shape)
            if out is None:
                return res
            np.copyto(out, res)
            return out
        ws = workspace
        b1 = multirow_half1(state, wz, inverse, ws=ws)  # step 1
        b2 = multirow_half2(b1, inverse, ws=ws)         # step 2
        ws.release(b1)
        b3 = multirow_half1(b2, wy, inverse, ws=ws)     # step 3
        ws.release(b2)
        b4 = multirow_half2(b3, inverse, ws=ws)         # step 4
        ws.release(b3)
        if out is None:
            out = np.empty(self.shape, b4.dtype)
        shared_x_transform(b4, inverse, out=out.reshape(b4.shape), ws=ws)
        ws.release(b4)
        return out

    def execute_steps(self, x: np.ndarray, inverse: bool = False):
        """Yield ``(StepInfo, state)`` after each step (for inspection)."""
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for shape {self.shape}, got {x.shape}")
        nz, ny, nx = self.shape
        wz = self._cache.four_step(self.rz1, self.rz2, self.precision)
        wy = self._cache.four_step(self.ry1, self.ry2, self.precision)
        infos = self.steps()
        state = x.reshape(self.rz2, self.rz1, self.ry2, self.ry1, nx)
        state = multirow_half1(state, wz, inverse)
        yield infos[0], state
        state = multirow_half2(state, inverse)
        yield infos[1], state
        state = multirow_half1(state, wy, inverse)
        yield infos[2], state
        state = multirow_half2(state, inverse)
        yield infos[3], state
        state = shared_x_transform(state, inverse)
        yield infos[4], state
