"""The paper's contribution: the bandwidth-intensive five-step 3-D FFT.

* :mod:`repro.core.patterns` — the access-pattern taxonomy of Table 2 and
  the pattern-pair bandwidth experiment of Tables 3/4;
* :mod:`repro.core.kernels` — the five simulated CUDA kernels (functional
  NumPy bodies + KernelSpecs);
* :mod:`repro.core.five_step` — the five-step plan (Section 3.1),
  generalized to any power-of-two cube the paper evaluates (64^3, 128^3,
  256^3) and to non-cubic power-of-two shapes;
* :mod:`repro.core.nosharedmem` — the no-shared-memory variant (Table 9);
* :mod:`repro.core.twiddle_options` — twiddle-storage tradeoff (Sec. 3.2);
* :mod:`repro.core.out_of_core` — transforms larger than device memory
  (Section 3.3, Table 12);
* :mod:`repro.core.estimator` — end-to-end time/GFLOPS prediction;
* :mod:`repro.core.resilient` — retries, checksummed transfers and
  checkpoint/restart over the fault-injecting simulator;
* :mod:`repro.core.api` — the high-level :class:`GpuFFT3D` entry point;
* :mod:`repro.core.plan_cache` — process-wide plan/twiddle cache keyed by
  ``(shape, precision, device)``;
* :mod:`repro.core.batch` — :class:`BatchedGpuFFT3D`, stream-pipelined
  execution of N same-shape transforms through one resilient plan;
* :mod:`repro.core.workspace` — :class:`Workspace`, the per-plan arena
  of shape/dtype-keyed host buffers behind the zero-allocation
  steady-state execution path.
"""

from repro.core.patterns import (
    Pattern,
    PATTERNS,
    pattern_of_star_dim,
    pattern_pair_bandwidth,
    pattern_table,
)
from repro.core.five_step import FiveStepPlan, StepInfo
from repro.core.kernels import multirow_step_spec, shared_x_step_spec
from repro.core.estimator import FFT3DEstimate, estimate_fft3d, estimate_batch_1d
from repro.core.out_of_core import OutOfCorePlan, estimate_out_of_core
from repro.core.nosharedmem import NoSharedMemoryVariant, estimate_x_axis_variants
from repro.core.twiddle_options import TwiddleOption, TWIDDLE_OPTIONS, twiddle_cost
from repro.core.resilient import (
    ResilienceReport,
    ResilientExecutor,
    RetryPolicy,
    checksum,
    energy_preserved,
    run_out_of_core,
)
from repro.core.api import GpuFFT3D, gpu_fft3d, gpu_ifft3d
from repro.core.batch import BatchedGpuFFT3D, gpu_fft3d_batch
from repro.core.plan_cache import PLAN_CACHE, PlanCache, PlanCacheStats
from repro.core.workspace import Workspace, WorkspaceStats
from repro.core.accuracy import AccuracyReport, accuracy_sweep, measure_accuracy
from repro.core.multi_gpu import MultiGpuBatchEstimate, MultiGpuEstimate, MultiGpuFFT3D
from repro.core.tuner import TuneResult, tune_multirow_step
from repro.core.warp_kernels import (
    run_five_step_warp_level,
    run_multirow_step,
    run_shared_x_step,
)
from repro.core.validate_specs import (
    SpecValidation,
    validate_multirow_spec,
    validate_shared_spec,
)

__all__ = [
    "Pattern",
    "PATTERNS",
    "pattern_of_star_dim",
    "pattern_pair_bandwidth",
    "pattern_table",
    "FiveStepPlan",
    "StepInfo",
    "multirow_step_spec",
    "shared_x_step_spec",
    "FFT3DEstimate",
    "estimate_fft3d",
    "estimate_batch_1d",
    "OutOfCorePlan",
    "estimate_out_of_core",
    "NoSharedMemoryVariant",
    "estimate_x_axis_variants",
    "TwiddleOption",
    "TWIDDLE_OPTIONS",
    "twiddle_cost",
    "ResilienceReport",
    "ResilientExecutor",
    "RetryPolicy",
    "checksum",
    "energy_preserved",
    "run_out_of_core",
    "GpuFFT3D",
    "gpu_fft3d",
    "gpu_ifft3d",
    "BatchedGpuFFT3D",
    "gpu_fft3d_batch",
    "PLAN_CACHE",
    "PlanCache",
    "PlanCacheStats",
    "Workspace",
    "WorkspaceStats",
    "AccuracyReport",
    "accuracy_sweep",
    "measure_accuracy",
    "MultiGpuBatchEstimate",
    "MultiGpuEstimate",
    "MultiGpuFFT3D",
    "TuneResult",
    "tune_multirow_step",
    "run_five_step_warp_level",
    "run_multirow_step",
    "run_shared_x_step",
    "SpecValidation",
    "validate_multirow_spec",
    "validate_shared_spec",
]
