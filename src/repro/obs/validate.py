"""Timeline invariant validator for the device simulator.

The stream/engine schedule in :mod:`repro.gpu.simulator` promises a set
of structural invariants; this module makes them machine-checkable so any
workload (and any future scheduler change) can be audited in one call:

* every event charges non-negative time and ends no earlier than it
  starts;
* operations issued on one stream start in issue order (streams are
  FIFO), including the synchronous default-stream lane;
* events occupying one hardware engine never overlap (engines
  serialize);
* :meth:`DeviceSimulator.engine_busy_seconds` equals the per-kind event
  sums it claims to summarize;
* ``elapsed`` equals the makespan of the event schedule (the latest
  event end, or zero for an empty timeline).

:func:`validate_timeline` returns the violations as strings (empty list
= clean); :func:`check_timeline` raises :class:`TimelineInvariantError`
so tests can assert in one line.
"""

from __future__ import annotations

from repro.gpu.simulator import DeviceSimulator

__all__ = ["TimelineInvariantError", "validate_timeline", "check_timeline"]

#: Event kind -> engine it occupies (host/backoff run off-card).
_ENGINE_OF = {"h2d": "h2d", "d2h": "d2h", "kernel": "compute"}


class TimelineInvariantError(AssertionError):
    """A simulator timeline violated one of its scheduling invariants."""


def validate_timeline(sim: DeviceSimulator, tol: float = 1e-12) -> list[str]:
    """Audit ``sim``'s timeline; returns a list of violation messages.

    ``tol`` absorbs float round-off in the overlap comparisons; the
    bookkeeping identities (busy-time sums, makespan) are checked
    exactly because the simulator computes them from the same floats.
    """
    events = sim.events()
    problems: list[str] = []

    for i, ev in enumerate(events):
        if ev.seconds < 0:
            problems.append(f"event {i} ({ev.label!r}): seconds {ev.seconds} < 0")
        if ev.end < ev.start:
            problems.append(
                f"event {i} ({ev.label!r}): end {ev.end} < start {ev.start}"
            )

    # Streams are FIFO: starts in issue (= record) order never decrease.
    last_start: dict[object, float] = {}
    for i, ev in enumerate(events):
        lane = "sync" if ev.stream is None else ev.stream
        prev = last_start.get(lane)
        if prev is not None and ev.start < prev - tol:
            problems.append(
                f"event {i} ({ev.label!r}): stream {lane} start regressed "
                f"({ev.start} after {prev})"
            )
        last_start[lane] = ev.start

    # Engines serialize: no two events on one engine overlap.
    per_engine: dict[str, list] = {"h2d": [], "d2h": [], "compute": []}
    for ev in events:
        engine = _ENGINE_OF.get(ev.kind)
        if engine is not None:
            per_engine[engine].append(ev)
    for engine, evs in per_engine.items():
        evs = sorted(evs, key=lambda e: (e.start, e.end))
        for a, b in zip(evs, evs[1:]):
            if b.start < a.end - tol:
                problems.append(
                    f"engine {engine}: {b.label!r} starts at {b.start} "
                    f"before {a.label!r} ends at {a.end}"
                )

    # Busy-time bookkeeping equals the per-kind sums it summarizes.
    busy = sim.engine_busy_seconds()
    sums = {
        "h2d": sum(e.seconds for e in events if e.kind == "h2d"),
        "d2h": sum(e.seconds for e in events if e.kind == "d2h"),
        "compute": sum(e.seconds for e in events if e.kind == "kernel"),
    }
    for engine, expected in sums.items():
        if busy[engine] != expected:
            problems.append(
                f"engine_busy_seconds[{engine!r}] = {busy[engine]} but the "
                f"event sum is {expected}"
            )

    # Elapsed is the schedule makespan.
    makespan = max((e.end for e in events), default=0.0)
    if sim.elapsed != makespan:
        problems.append(
            f"elapsed {sim.elapsed} != makespan {makespan} over "
            f"{len(events)} events"
        )

    return problems


def check_timeline(sim: DeviceSimulator, tol: float = 1e-12) -> None:
    """Raise :class:`TimelineInvariantError` if ``sim``'s timeline is bad."""
    problems = validate_timeline(sim, tol)
    if problems:
        raise TimelineInvariantError(
            f"{len(problems)} timeline invariant violation(s):\n"
            + "\n".join(f"  - {p}" for p in problems)
        )
