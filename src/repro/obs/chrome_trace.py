"""Chrome trace-event export (``chrome://tracing`` / Perfetto loadable).

Serializes a list of :class:`~repro.obs.tracer.Span` into the trace-event
JSON format both viewers accept: a top-level object with ``traceEvents``
(a list of events) and ``displayTimeUnit``.  The layout convention,
pinned by the golden-trace regression test:

* **pid 1 — "engines"**: one track (tid) per hardware engine — ``h2d``
  (tid 1), ``compute`` (tid 2), ``d2h`` (tid 3) — plus ``host`` (tid 4)
  for host/backoff time.  Summing ``dur`` over tids 1-3 reproduces
  :meth:`DeviceSimulator.engine_busy_seconds` exactly.
* **pid 2 — "streams"**: one track per numbered CUDA-style stream
  (tid = stream + 1); synchronous default-stream operations land on
  tid 0.  Every simulator event appears here as well, so the stream view
  shows the issue order while the engine view shows the contention.

Each operation is a complete event (``ph: "X"``) with microsecond ``ts``
and ``dur`` on the simulated clock; ``args`` carries the enrichment
(bytes, flops, fault flag, plan id, batch entry and any other
annotations).  Track names arrive as metadata events (``ph: "M"``).

Multi-node runs: spans carrying a ``node`` tag (a tracer attached with a
scope — see :meth:`~repro.obs.tracer.Tracer.attach`) land in *their
node's own* pid pair — ``engines [n0]`` / ``streams [n0]``, allocated
after the reserved pids 1/2 in sorted node order — instead of
interleaving every node's cards onto one process's lanes.  Unscoped
spans keep the pinned pid 1/2 layout exactly, which is what the golden
trace test continues to assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import Span

__all__ = [
    "ENGINE_PID",
    "STREAM_PID",
    "ENGINE_TIDS",
    "chrome_trace",
    "write_chrome_trace",
]

#: pid of the per-engine track group.
ENGINE_PID = 1
#: pid of the per-stream track group.
STREAM_PID = 2

#: tid of each engine track under :data:`ENGINE_PID`.
ENGINE_TIDS = {"h2d": 1, "compute": 2, "d2h": 3, "host": 4}


def _meta(pid: int, name: str, tid: int | None = None, sort: int | None = None):
    events = []
    if tid is None:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
    else:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
        if sort is not None:
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": sort},
                }
            )
    return events


def _args(span: Span) -> dict:
    args: dict[str, object] = {"kind": span.kind}
    if span.bytes_moved:
        args["bytes"] = span.bytes_moved
    if span.flops:
        args["flops"] = span.flops
    if span.faulted:
        args["faulted"] = True
    if span.plan is not None:
        args["plan"] = span.plan
    if span.entry is not None:
        args["entry"] = span.entry
    for k, v in span.tags:
        args[k] = v
    return args


def _complete(span: Span, pid: int, tid: int) -> dict:
    return {
        "name": span.label,
        "cat": span.kind,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.seconds * 1e6,
        "pid": pid,
        "tid": tid,
        "args": _args(span),
    }


def _node_of(span: Span) -> str | None:
    """The span's owning node scope (its ``node`` tag), if any."""
    for k, v in span.tags:
        if k == "node":
            return str(v)
    return None


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Build the trace-event JSON object for ``spans``.

    Returns a plain dict ready for :func:`json.dumps`; load the result in
    ``chrome://tracing`` or https://ui.perfetto.dev to see one lane per
    engine and per stream with all overlap visible.  Spans tagged with a
    ``node`` scope get a pid pair per node; untagged spans keep the
    pinned pid 1/2 layout.
    """
    spans = list(spans)
    events: list[dict] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    groups: dict[str | None, list[Span]] = {}
    for span in spans:
        groups.setdefault(_node_of(span), []).append(span)
    order: list[str | None] = [None] if None in groups else []
    order += sorted(k for k in groups if k is not None)
    scoped = [k for k in order if k is not None]
    pids: dict[str | None, tuple[int, int]] = {
        None: (ENGINE_PID, STREAM_PID)
    }
    for i, scope in enumerate(scoped):
        pids[scope] = (STREAM_PID + 2 * i + 1, STREAM_PID + 2 * i + 2)
    for scope in order:
        engine_pid, stream_pid = pids[scope]
        suffix = "" if scope is None else f" [{scope}]"
        group = groups[scope]
        events += _meta(engine_pid, f"engines{suffix}")
        for engine, tid in ENGINE_TIDS.items():
            events += _meta(engine_pid, engine, tid, sort=tid)
        streams = sorted(
            {s.stream for s in group if s.stream is not None}, key=int
        )
        events += _meta(stream_pid, f"streams{suffix}")
        if any(s.stream is None for s in group):
            events += _meta(stream_pid, "default (sync)", 0, sort=0)
        for stream in streams:
            tid = int(stream) + 1
            events += _meta(stream_pid, f"stream {stream}", tid, sort=tid)
    for span in spans:
        engine_pid, stream_pid = pids[_node_of(span)]
        events.append(_complete(span, engine_pid, ENGINE_TIDS[span.engine]))
        tid = 0 if span.stream is None else int(span.stream) + 1
        events.append(_complete(span, stream_pid, tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: Iterable[Span]) -> Path:
    """Serialize ``spans`` to ``path`` as trace-event JSON; returns it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans), indent=2) + "\n")
    return path
