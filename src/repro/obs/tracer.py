"""Structured tracing for the device simulator.

:class:`Tracer` subscribes to :meth:`DeviceSimulator.add_record_hook` and
turns every :class:`~repro.gpu.simulator.TimelineEvent` into an enriched,
immutable :class:`Span`: the raw event fields (kind, label, start,
duration, bytes, flops, fault flag, stream) plus the *engine* the event
occupied and whatever annotations the algorithm layer had pushed via
:meth:`DeviceSimulator.annotate` — plan id, batch entry, out-of-core
stage.  Spans are what the Chrome-trace exporter
(:mod:`repro.obs.chrome_trace`) and the metrics recorder
(:mod:`repro.obs.metrics`) consume.

Tracing is strictly opt-in: a simulator with no tracer attached pays one
truthiness check per recorded event, and attaching never changes the
simulated timeline — spans are a read-only projection of it, which is
what keeps traced and untraced runs bit-identical.

Host-side phases that never touch a simulator (the multi-GPU rank model,
analytic docking accounting) can still appear on the trace via
:meth:`Tracer.emit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.gpu.simulator import DeviceSimulator, TimelineEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "engine_of"]


def engine_of(kind: str) -> str:
    """The hardware engine an event kind occupies.

    Transfers map to their copy engine, kernels to the compute engine;
    ``host`` and ``backoff`` time runs on the host, off the card's three
    engines.
    """
    if kind in ("h2d", "d2h"):
        return kind
    if kind == "kernel":
        return "compute"
    return "host"


@dataclass(frozen=True)
class Span:
    """One traced operation: a timeline event plus its annotations."""

    kind: str
    label: str
    start: float
    seconds: float
    engine: str
    stream: int | None = None
    bytes_moved: int = 0
    flops: float = 0.0
    faulted: bool = False
    #: Owning plan id (``GpuFFT3D``/``BatchedGpuFFT3D`` buffer prefix),
    #: ``None`` for unattributed operations.
    plan: str | None = None
    #: Batch entry index within the owning plan, when applicable.
    entry: int | None = None
    #: Remaining annotation tags (out-of-core stage, slab index, rank...).
    tags: tuple[tuple[str, object], ...] = ()

    @property
    def end(self) -> float:
        """Completion time on the simulated clock."""
        return self.start + self.seconds


class Tracer:
    """Capture enriched spans from one or more device simulators.

    Attach with :meth:`attach` (or use the tracer as a context manager
    around a simulator scope), run any workload, then read
    :meth:`spans`, export via :meth:`chrome_trace`, or hand a
    :class:`~repro.obs.metrics.MetricsRegistry` at construction to have
    every span folded into metrics as it is captured.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics
        self._spans: list[Span] = []
        self._hooks: dict[int, tuple[DeviceSimulator, object]] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, sim: DeviceSimulator, scope: str | None = None) -> "Tracer":
        """Start capturing ``sim``'s events; idempotent per simulator.

        ``scope`` names the owner of this simulator in a multi-node run
        (e.g. a cluster node id): every span captured from ``sim`` then
        carries a ``node`` tag, which the Chrome-trace exporter uses to
        give each node its own track group instead of interleaving every
        node's cards onto one process's lanes.
        """
        if id(sim) not in self._hooks:
            if scope is None:
                hook = sim.add_record_hook(self._on_record)
            else:
                def scoped_hook(
                    ev: TimelineEvent,
                    tags: Mapping[str, object],
                    _scope: str = scope,
                ) -> None:
                    self._on_record(ev, tags, _scope)

                hook = sim.add_record_hook(scoped_hook)
            self._hooks[id(sim)] = (sim, hook)
        return self

    def detach(self, sim: DeviceSimulator | None = None) -> None:
        """Stop capturing ``sim`` (or every attached simulator)."""
        if sim is not None:
            entry = self._hooks.pop(id(sim), None)
            if entry is not None:
                entry[0].remove_record_hook(entry[1])
            return
        for attached, hook in self._hooks.values():
            attached.remove_record_hook(hook)
        self._hooks.clear()

    @property
    def attached(self) -> list[DeviceSimulator]:
        """The simulators currently feeding this tracer."""
        return [sim for sim, _ in self._hooks.values()]

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def _on_record(
        self,
        ev: TimelineEvent,
        tags: Mapping[str, object],
        scope: str | None = None,
    ) -> None:
        plan = tags.get("plan")
        entry = tags.get("entry")
        extra = tuple(
            (k, v) for k, v in tags.items() if k not in ("plan", "entry")
        )
        if scope is not None and "node" not in tags:
            extra += (("node", scope),)
        self._capture(
            Span(
                kind=ev.kind,
                label=ev.label,
                start=ev.start,
                seconds=ev.seconds,
                engine=engine_of(ev.kind),
                stream=ev.stream,
                bytes_moved=ev.bytes_moved,
                flops=ev.flops,
                faulted=ev.faulted,
                plan=None if plan is None else str(plan),
                entry=None if entry is None else int(entry),  # type: ignore[arg-type]
                tags=extra,
            )
        )

    def _capture(self, span: Span) -> None:
        self._spans.append(span)
        if self.metrics is not None:
            self.metrics.record_span(span)

    def emit(
        self,
        kind: str,
        label: str,
        start: float,
        seconds: float,
        *,
        stream: int | None = None,
        bytes_moved: int = 0,
        flops: float = 0.0,
        faulted: bool = False,
        plan: str | None = None,
        entry: int | None = None,
        **tags: object,
    ) -> Span:
        """Record a synthetic span for work outside any simulator.

        Used by layers whose timing is analytic rather than simulated —
        the multi-GPU rank model emits one span per rank phase — so their
        phases land on the same trace as real simulator events.
        """
        span = Span(
            kind=kind,
            label=label,
            start=start,
            seconds=seconds,
            engine=engine_of(kind),
            stream=stream,
            bytes_moved=bytes_moved,
            flops=flops,
            faulted=faulted,
            plan=plan,
            entry=entry,
            tags=tuple(tags.items()),
        )
        self._capture(span)
        return span

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every captured span, in record order (list copy)."""
        return list(self._spans)

    def engine_busy_seconds(self) -> dict[str, float]:
        """Busy seconds per engine over the captured spans.

        Matches :meth:`DeviceSimulator.engine_busy_seconds` exactly when
        the tracer saw the simulator's whole lifetime — the acceptance
        cross-check the test suite pins to 1e-9.
        """
        busy = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0, "host": 0.0}
        for s in self._spans:
            busy[s.engine] += s.seconds
        return busy

    def chrome_trace(self) -> dict:
        """The captured spans as a Chrome trace-event JSON object."""
        from repro.obs.chrome_trace import chrome_trace

        return chrome_trace(self._spans)

    def clear(self) -> None:
        """Drop every captured span (attachments stay)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
