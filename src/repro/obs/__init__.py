"""repro.obs — observability for the simulated FFT pipeline.

Structured tracing, a metrics registry and Chrome-trace export layered on
the device simulator's record hook (PR 3).  Everything here is opt-in and
read-only: attaching a tracer or profiler never changes simulated times,
results or fault schedules.

* :mod:`repro.obs.tracer` — :class:`Span` capture via
  :meth:`DeviceSimulator.add_record_hook`, enriched with plan/entry/stage
  annotations;
* :mod:`repro.obs.metrics` — counters, gauges and histograms with units,
  aggregated process-wide and per plan;
* :mod:`repro.obs.chrome_trace` — ``chrome://tracing`` / Perfetto
  loadable trace-event JSON, one track per engine and per stream;
* :mod:`repro.obs.validate` — the timeline invariant auditor;
* :mod:`repro.obs.profiler` — the facade the execution layers accept as
  their ``profiler=`` parameter.
"""

from repro.obs.chrome_trace import chrome_trace, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import Profiler, profile
from repro.obs.tracer import Span, Tracer, engine_of
from repro.obs.validate import (
    TimelineInvariantError,
    check_timeline,
    validate_timeline,
)

__all__ = [
    "Span",
    "Tracer",
    "engine_of",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "Profiler",
    "profile",
    "TimelineInvariantError",
    "check_timeline",
    "validate_timeline",
]
