"""The one-stop profiling facade: tracer + metrics + exports.

:class:`Profiler` bundles a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`, subscribes to the
process-wide plan cache's hit/miss feed, and knows how to refresh the
simulator-state gauges (elapsed, memory in use, device resets) at
snapshot time.  It is what the execution layers accept as their
``profiler=`` parameter: hand the same instance to a
:class:`~repro.core.api.GpuFFT3D`, a
:class:`~repro.core.batch.BatchedGpuFFT3D`, a
:class:`~repro.core.multi_gpu.MultiGpuFFT3D` batch and a
:class:`~repro.apps.docking.zdock.DockingSearch`, call the exact same
execute methods as an unprofiled run, and read one merged trace and one
merged metrics snapshot afterwards.

Usage::

    with Profiler() as prof:
        plan = GpuFFT3D((32, 32, 32), profiler=prof)
        plan.forward(x)
        prof.write_chrome_trace("trace.json")   # open in Perfetto
        print(prof.metrics.render())

Profiling is opt-in and read-only: simulated times, results and fault
schedules are bit-identical with or without a profiler attached.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.core.plan_cache import PLAN_CACHE
from repro.fft.twiddle import DEFAULT_CACHE
from repro.gpu.simulator import DeviceSimulator
from repro.obs.chrome_trace import write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["Profiler", "profile"]


class Profiler:
    """Shared tracer + metrics registry with lifecycle management."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics)
        self._sims: list[DeviceSimulator] = []
        self._scopes: dict[int, str] = {}
        self._cache_observer = PLAN_CACHE.add_observer(self._on_cache_event)
        self._twiddle_observer = DEFAULT_CACHE.add_observer(
            self._on_twiddle_event
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, sim: DeviceSimulator, scope: str | None = None) -> "Profiler":
        """Capture ``sim``'s events from now on; idempotent per simulator.

        ``scope`` attributes the simulator to one owner in a multi-node
        run (a cluster node id): its spans carry a ``node`` tag and its
        snapshot gauges a ``node`` label, so several nodes sharing one
        profiler stay distinguishable instead of folding together.
        """
        if self._closed:
            raise ValueError("profiler is closed")
        if sim not in self._sims:
            self._sims.append(sim)
            if scope is not None:
                self._scopes[id(sim)] = scope
            self.tracer.attach(sim, scope=scope)
        return self

    def close(self) -> None:
        """Detach from every simulator and the plan cache (idempotent).

        Captured spans and metrics stay readable after closing — only the
        live subscriptions are torn down.
        """
        if self._closed:
            return
        self._closed = True
        self.tracer.detach()
        self._sims.clear()
        self._scopes.clear()
        PLAN_CACHE.remove_observer(self._cache_observer)
        DEFAULT_CACHE.remove_observer(self._twiddle_observer)

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------

    def _on_cache_event(
        self, outcome: str, backend: str | None = None, seconds: float | None = None
    ) -> None:
        # Observers run on the requesting thread, so the cache's
        # thread-local scope (set per cluster node around submits and
        # dispatch) attributes the event; single-process runs see the
        # unlabeled counter only, exactly as before.
        self.metrics.counter(f"plan_cache.{outcome}", "requests").inc()
        scope = PLAN_CACHE.current_scope
        if scope is not None:
            self.metrics.counter(
                f"plan_cache.{outcome}", "requests", {"node": scope}
            ).inc()
        # Compiled-backend traffic gets an additional labeled stream
        # (kind=jit, backend=...), keeping the unlabeled feed identical
        # to numpy-only runs.  Compile events also accumulate their
        # warm-up wall time so the cost of JIT is visible, not implied.
        if backend is not None and backend != "numpy":
            self.metrics.counter(
                f"plan_cache.{outcome}",
                "requests",
                {"kind": "jit", "backend": backend},
            ).inc()
            if outcome == "compiles" and seconds is not None:
                self.metrics.counter(
                    "jit.compile.seconds", "s", {"backend": backend}
                ).inc(seconds)

    def _on_twiddle_event(self, outcome: str, key: tuple) -> None:
        # Twiddle tables are plan-derived constants, so their hit/miss
        # feed lands in the plan_cache family under a "twiddle" kind.
        self.metrics.counter(
            f"plan_cache.{outcome}", "requests", {"kind": "twiddle"}
        ).inc()

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Refresh the simulator gauges, then return the metrics snapshot.

        Gauges carry a ``sim=<index>`` label in attachment order (plus a
        ``node`` label for simulators attached with a scope):
        ``sim.elapsed.seconds``, ``sim.used.bytes``, ``sim.device.resets``
        plus the per-engine ``sim.engine.busy.seconds``.
        """
        for i, sim in enumerate(self._sims):
            labels: dict[str, object] = {"sim": i}
            scope = self._scopes.get(id(sim))
            if scope is not None:
                labels["node"] = scope
            self.metrics.gauge("sim.elapsed.seconds", "s", labels).set(sim.elapsed)
            self.metrics.gauge("sim.used.bytes", "B", labels).set(sim.used_bytes)
            self.metrics.gauge("sim.device.resets", "resets", labels).set(
                sim.device_resets
            )
            for engine, busy in sim.engine_busy_seconds().items():
                self.metrics.gauge(
                    "sim.engine.busy.seconds", "s", {**labels, "engine": engine}
                ).set(busy)
        return self.metrics.snapshot()

    def chrome_trace(self) -> dict:
        """The captured spans as a Chrome trace-event JSON object."""
        return self.tracer.chrome_trace()

    def write_chrome_trace(self, path) -> Path:
        """Write the Chrome trace to ``path`` (Perfetto-loadable JSON)."""
        return write_chrome_trace(path, self.tracer.spans())

    def render(self) -> str:
        """Human-readable dump: metrics table + per-engine busy line."""
        self.snapshot()
        busy = self.tracer.engine_busy_seconds()
        line = ", ".join(f"{k} {v * 1e3:.3f} ms" for k, v in busy.items())
        return self.metrics.render() + f"\ntracer engines: {line}"


@contextmanager
def profile(sim: DeviceSimulator) -> Iterator[Profiler]:
    """Profile everything ``sim`` runs inside the ``with`` block.

    Shorthand for attaching a fresh :class:`Profiler` to an existing
    simulator::

        with profile(plan.simulator) as prof:
            plan.forward(x)
        trace = prof.chrome_trace()
    """
    prof = Profiler()
    try:
        yield prof.attach(sim)
    finally:
        prof.close()
