"""Metrics registry: counters, gauges and histograms with units.

The quantitative half of :mod:`repro.obs`.  Every metric is identified by
a name, a unit and an optional label set (``plan=batch0``), so one
registry aggregates the same quantity both process-wide (no labels) and
per plan — the split the span recorder in :class:`MetricsRegistry`
maintains automatically for every captured span.

Metric families
---------------

* :class:`Counter` — monotonically increasing totals (seconds per event
  kind, bytes per transfer direction, retries, plan-cache hits/misses);
* :class:`Gauge` — point-in-time values refreshed at snapshot time
  (simulated elapsed seconds, device memory in use, device resets);
* :class:`Histogram` — distributions over log-spaced buckets (achieved
  GB/s per kernel step and per PCIe direction).

Canonical names recorded from spans (see DESIGN.md §12 for the full
table): ``sim.kernel.seconds``, ``sim.h2d.seconds``, ``sim.d2h.seconds``,
``sim.host.seconds``, ``sim.backoff.seconds``, ``sim.h2d.bytes``,
``sim.d2h.bytes``, ``sim.kernel.bytes``, ``sim.kernel.flops``,
``sim.faulted.seconds``, ``sim.faulted.events``, ``sim.events``,
``sim.kernel.gbps``, ``sim.h2d.gbps``, ``sim.d2h.gbps``,
``plan_cache.hits``, ``plan_cache.misses``, ``plan_cache.evictions``,
``multigpu.replans``.

The serving layer (:mod:`repro.serve`) records its own family under the
``serve.`` prefix (DESIGN.md §13): ``serve.submitted``,
``serve.completed`` (also per ``tenant=`` label), ``serve.rejected``
(per ``reason=`` label), ``serve.expired``, ``serve.batches``,
``serve.queue.depth`` (gauge), ``serve.queue.wait.seconds``,
``serve.first_dispatch.seconds``, ``serve.latency.seconds`` and
``serve.batch.size`` (histograms, simulated device seconds).  The
fault-tolerant layer (DESIGN.md §15) adds ``serve.health.state`` (gauge,
state code per ``worker=``), ``serve.health.transitions`` (per
``worker=``/``to=``), ``serve.health.probes`` (per ``outcome=``),
``serve.health.absorbed``, ``serve.health.forced_host``,
``serve.breaker.open`` / ``serve.breaker.state`` (per ``worker=``),
``serve.requeue.requests``, ``serve.requeue.dropped`` (per
``reason=budget|deadline``) and ``serve.drains`` (per ``outcome=``).

:meth:`MetricsRegistry.snapshot` returns the whole registry as one plain
dict (JSON-safe) and :meth:`MetricsRegistry.render` as an aligned text
table for humans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict[str, object] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_suffix(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


@dataclass
class Counter:
    """A monotonically increasing total (e.g. seconds, bytes, events)."""

    name: str
    unit: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (e.g. bytes in use, simulated elapsed)."""

    name: str
    unit: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution over log-spaced buckets plus count/sum/min/max.

    Buckets are decade-spaced powers of ten from 1e-9 to 1e12 — wide
    enough for seconds, bytes and GB/s alike without per-metric tuning.
    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the last
    slot is the overflow bucket.
    """

    name: str
    unit: str = ""
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bounds: tuple[float, ...] = tuple(10.0**e for e in range(-9, 13))
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100]).

        Resolution is the decade bucket width: the estimate interpolates
        linearly inside the bucket holding the rank, clamped to the
        observed min/max so small samples stay sane.  Good for p50/p99
        dashboards, not for sub-decade comparisons — keep raw samples
        when those matter.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - seen) / n
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            seen += n
        return self.max


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics.

    Metrics are keyed by ``(name, labels)``; requesting the same key
    twice returns the same object, so call sites never pre-register.
    The ``record_span`` entry point turns one tracer span into the
    canonical counter/histogram updates, each recorded twice: once
    process-wide and once under the span's ``plan`` label (when tagged).
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        # record_span fast path: resolved counter bundles keyed by the
        # span's branch signature, so steady-state capture skips the
        # label-key construction in the get-or-create accessors.
        self._span_counters: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Metric access
    # ------------------------------------------------------------------

    def counter(
        self, name: str, unit: str = "", labels: dict[str, object] | None = None
    ) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name + _label_suffix(key[1]), unit)
        return c

    def gauge(
        self, name: str, unit: str = "", labels: dict[str, object] | None = None
    ) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name + _label_suffix(key[1]), unit)
        return g

    def histogram(
        self, name: str, unit: str = "", labels: dict[str, object] | None = None
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name + _label_suffix(key[1]), unit)
        return h

    # ------------------------------------------------------------------
    # Span recording (the tracer's write path)
    # ------------------------------------------------------------------

    def record_span(self, span) -> None:
        """Fold one :class:`~repro.obs.tracer.Span` into the registry."""
        key = (
            span.kind,
            span.plan,
            span.faulted,
            bool(span.bytes_moved),
            bool(span.flops),
        )
        bundle = self._span_counters.get(key)
        if bundle is None:
            bundle = self._span_counters[key] = self._resolve_span_counters(key)
        events, seconds, byte_ctrs, flop_ctrs, f_events, f_seconds = bundle
        for c in events:
            c.inc()
        for c in seconds:
            c.inc(span.seconds)
        for c in byte_ctrs:
            c.inc(span.bytes_moved)
        for c in flop_ctrs:
            c.inc(span.flops)
        for c in f_events:
            c.inc()
        for c in f_seconds:
            c.inc(span.seconds)
        # Achieved bandwidth per step/direction, process-wide only: the
        # label here is the operation, not the owning plan.
        self._record_span_bandwidth(span)

    def _resolve_span_counters(self, key: tuple) -> tuple:
        """Counter bundle for one ``record_span`` branch signature.

        Resolving through :meth:`counter` keeps get-or-create identity:
        the cached objects are the same ones any later direct accessor
        call returns, and counters that a signature never touches (bytes
        on a zero-byte span, ``sim.faulted.*`` on a clean one) are never
        created — matching the uncached write path exactly.
        """
        kind, plan, faulted, has_bytes, has_flops = key
        scopes: list[dict[str, object] | None] = [None]
        if plan is not None:
            scopes.append({"plan": plan})
        events = [self.counter("sim.events", "events", s) for s in scopes]
        seconds = [self.counter(f"sim.{kind}.seconds", "s", s) for s in scopes]
        byte_ctrs = (
            [self.counter(f"sim.{kind}.bytes", "B", s) for s in scopes]
            if has_bytes and kind in ("h2d", "d2h", "kernel")
            else []
        )
        flop_ctrs = (
            [self.counter("sim.kernel.flops", "flop", s) for s in scopes]
            if has_flops and kind == "kernel"
            else []
        )
        f_events = (
            [self.counter("sim.faulted.events", "events", s) for s in scopes]
            if faulted
            else []
        )
        f_seconds = (
            [self.counter("sim.faulted.seconds", "s", s) for s in scopes]
            if faulted
            else []
        )
        return events, seconds, byte_ctrs, flop_ctrs, f_events, f_seconds

    def _record_span_bandwidth(self, span) -> None:
        """Observe achieved GB/s for one clean, byte-moving span."""
        if span.bytes_moved and span.seconds > 0 and not span.faulted:
            gbps = span.bytes_moved / span.seconds / 1e9
            if span.kind in ("h2d", "d2h"):
                self.histogram(f"sim.{span.kind}.gbps", "GB/s").observe(gbps)
            elif span.kind == "kernel":
                self.histogram(
                    "sim.kernel.gbps", "GB/s", {"step": span.label}
                ).observe(gbps)

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as one JSON-safe dict.

        Shape: ``{"counters": {name: {"value", "unit"}}, "gauges": {...},
        "histograms": {name: {"count", "sum", "min", "max", "mean",
        "unit"}}}`` with label suffixes baked into the names
        (``sim.h2d.seconds{plan=batch0}``).
        """
        counters = {
            c.name: {"value": c.value, "unit": c.unit}
            for c in self._counters.values()
        }
        gauges = {
            g.name: {"value": g.value, "unit": g.unit}
            for g in self._gauges.values()
        }
        histograms = {
            h.name: {
                "count": h.count,
                "sum": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "mean": h.mean,
                "unit": h.unit,
            }
            for h in self._histograms.values()
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def render(self) -> str:
        """Aligned text table of every metric, for terminal consumption."""
        rows: list[tuple[str, str, str]] = []
        for c in sorted(self._counters.values(), key=lambda m: m.name):
            rows.append((c.name, f"{c.value:.6g}", c.unit))
        for g in sorted(self._gauges.values(), key=lambda m: m.name):
            rows.append((g.name, f"{g.value:.6g}", g.unit))
        for h in sorted(self._histograms.values(), key=lambda m: m.name):
            if h.count:
                stat = (
                    f"n={h.count} mean={h.mean:.6g} "
                    f"min={h.min:.6g} max={h.max:.6g}"
                )
            else:
                stat = "n=0"
            rows.append((h.name, stat, h.unit))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _, _ in rows)
        return "\n".join(
            f"{name:<{width}}  {value}" + (f" {unit}" if unit else "")
            for name, value, unit in rows
        )

    def clear(self) -> None:
        """Drop every metric (names included)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_counters.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
