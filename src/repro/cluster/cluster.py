"""`FFTCluster`: N simulated nodes behind a consistent-hash routing tier.

Each node is one machine: an :class:`~repro.serve.server.FFTServer`
replica with its own cards (workers), its own fault-injector child and
its own plan-cache scope.  The cluster front door routes every request by
consistent hashing of ``plan-key slug / tenant`` — so one plan's
requests keep landing where its engines are warm — with bounded-load
spilling so a hot key cannot starve the fleet.

The cluster exposes the same duck-typed surface the ASGI gateway
consumes from a single ``FFTServer`` (``submit``, ``queue.depth``,
``metrics``, ``profiler``, ``draining``, ``health.any_dispatchable()``,
``stats()``), so ``Gateway(cluster)`` works unchanged.

Failure model: :meth:`FFTCluster.kill_node` (the chaos drill's node-loss
action) removes the node from the ring, closes its server, and re-queues
every not-yet-resolved request onto the survivors by ring walk order —
the same loss-free guarantee the single server makes for worker deaths,
lifted one level up.  Requests that cannot be re-placed fail with the
*existing* typed taxonomy (``RequeueExhaustedError`` /
``ServerClosedError``); node loss introduces no new error codes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.plan_cache import PLAN_CACHE
from repro.cluster.distributed import DistributedFFT3D
from repro.cluster.router import ConsistentHashRouter
from repro.gpu.faults import FaultInjector
from repro.gpu.interconnect import ClusterInterconnect
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.obs.metrics import MetricsRegistry
from repro.serve.coalescer import CoalescePolicy
from repro.serve.errors import (
    DrainingError,
    QueueFullError,
    RejectedError,
    RequeueExhaustedError,
    ServerClosedError,
)
from repro.serve.health import HealthPolicy
from repro.serve.request import FFTFuture, FFTRequest
from repro.serve.server import FFTServer, ServeStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.profiler import Profiler

__all__ = ["ClusterNode", "ClusterStats", "FFTCluster"]


@dataclass
class ClusterNode:
    """One simulated machine: a named server replica and its liveness."""

    node_id: int
    name: str
    server: FFTServer
    alive: bool = True


@dataclass
class ClusterStats:
    """Cluster-level snapshot plus every node's own account.

    The scalar fields are what the gateway's health route reads
    (``queue_depth``/``inflight``/``completed``/``worker_health``);
    ``nodes`` carries the full per-node :class:`ServeStats` so nothing
    is folded away.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Requests re-queued across nodes after a node loss.
    requeued: int = 0
    node_losses: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    queue_depth: int = 0
    inflight: int = 0
    #: ``"n0/w1" -> state`` for live nodes, ``"n2" -> "dead"`` for lost ones.
    worker_health: dict[str, str] = field(default_factory=dict)
    nodes: dict[str, ServeStats] = field(default_factory=dict)
    node_alive: dict[str, bool] = field(default_factory=dict)


@dataclass
class _Entry:
    """Tracking for one in-flight cluster request.

    ``inner`` is the node-server future currently carrying the request;
    a node loss supersedes it (sets it to ``None``) before closing the
    node, so the dead server's ``ServerClosedError`` resolution is
    ignored and the re-queued future takes over.
    """

    request: FFTRequest
    outer: FFTFuture
    route_key: str
    node: str
    inner: FFTFuture | None
    weight: float


class _ClusterQueueView:
    """Duck-type of ``FFTServer.queue`` for the gateway: summed depth."""

    def __init__(self, cluster: "FFTCluster"):
        self._cluster = cluster

    @property
    def depth(self) -> int:
        """Requests queued across all live nodes."""
        return sum(
            node.server.queue.depth
            for node in self._cluster.nodes
            if node.alive
        )


class _ClusterHealthView:
    """Duck-type of ``FFTServer.health`` for the gateway."""

    def __init__(self, cluster: "FFTCluster"):
        self._cluster = cluster

    def any_dispatchable(self) -> bool:
        """True while any live node can take traffic."""
        for node in self._cluster.nodes:
            if not node.alive:
                continue
            monitor = node.server.health
            if monitor is None or monitor.any_dispatchable():
                return True
        return False


class FFTCluster:
    """A routed fleet of ``FFTServer`` replicas on one simulated fabric.

    Parameters
    ----------
    n_nodes / cards_per_node:
        Fleet shape: each node runs an independent server with
        ``cards_per_node`` workers (its own simulated cards).
    device / interconnect:
        The per-node card model and the inter-node fabric (used by the
        distributed plan's exchange phases).
    fault_injector:
        A single injector is :meth:`~repro.gpu.faults.FaultInjector.split`
        into independently seeded per-node children (each node splits its
        child again per worker); a sequence of exactly ``n_nodes``
        injectors scopes each node explicitly.
    health / coalesce / max_depth / serial_dispatch / pooling / start:
        Forwarded to every node's server.  ``start=False`` is the
        deterministic drive mode: the caller pumps :meth:`run_pending`.
    profiler:
        Optional :class:`repro.obs.Profiler`.  Node simulators attach to
        its tracer under a per-node scope and each node's plan-cache
        traffic is folded under its own scope label, so cluster runs do
        not cross-contaminate single-process metrics.  Node servers keep
        *separate* registries for their ``serve.*`` families.
    vnodes / balance_factor:
        Consistent-hash ring shape (virtual nodes per node) and the
        bounded-load spill threshold.
    """

    def __init__(
        self,
        n_nodes: int = 2,
        cards_per_node: int = 1,
        device: DeviceSpec = GEFORCE_8800_GTX,
        interconnect: ClusterInterconnect | None = None,
        fault_injector: FaultInjector | Sequence[FaultInjector] | None = None,
        health: HealthPolicy | bool | None = None,
        coalesce: CoalescePolicy | None = None,
        max_depth: int = 256,
        serial_dispatch: bool = False,
        pooling: bool = True,
        start: bool = True,
        profiler: Profiler | None = None,
        vnodes: int = 64,
        balance_factor: float = 1.25,
        name: str = "cluster",
    ):
        if n_nodes < 1:
            raise ValueError("n_nodes must be at least 1")
        self.device = device
        self.interconnect = interconnect or ClusterInterconnect()
        self.profiler = profiler
        self.metrics: MetricsRegistry = (
            profiler.metrics if profiler is not None else MetricsRegistry()
        )
        self._name = name
        injectors: list[FaultInjector | None]
        if fault_injector is None:
            injectors = [None] * n_nodes
        elif isinstance(fault_injector, FaultInjector):
            injectors = (
                [fault_injector] if n_nodes == 1 else fault_injector.split(n_nodes)
            )
        else:
            injectors = list(fault_injector)
            if len(injectors) != n_nodes:
                raise ValueError(
                    f"need exactly one fault injector per node: got "
                    f"{len(injectors)} for n_nodes={n_nodes}"
                )
        self.nodes: list[ClusterNode] = []
        for nid in range(n_nodes):
            node_name = f"n{nid}"
            server = FFTServer(
                device=device,
                coalesce=coalesce,
                max_depth=max_depth,
                n_workers=cards_per_node,
                serial_dispatch=serial_dispatch,
                pooling=pooling,
                fault_injector=injectors[nid],
                health=health,
                profiler=None,
                start=start,
                name=f"{name}-{node_name}",
            )
            if profiler is not None:
                for sim in server._sims:
                    profiler.attach(sim, scope=node_name)
            self.nodes.append(ClusterNode(nid, node_name, server))
        self._by_name = {node.name: node for node in self.nodes}
        self._router = ConsistentHashRouter(
            self._by_name, vnodes=vnodes, balance_factor=balance_factor
        )
        self.queue = _ClusterQueueView(self)
        self.health = _ClusterHealthView(self)
        self._lock = threading.Lock()
        self._entries: dict[int, _Entry] = {}
        self._outstanding: dict[str, float] = {n.name: 0.0 for n in self.nodes}
        self._completion_seq = count()
        self._completed = 0
        self._failed = 0
        self._requeued = 0
        self._node_losses = 0
        self._rejected: dict[str, int] = {}
        self._closed = False
        self._draining = False

    # ------------------------------------------------------------------
    # Routing + client surface
    # ------------------------------------------------------------------

    @staticmethod
    def route_key(request: FFTRequest) -> str:
        """The sharding key: plan-cache key plus tenant.

        The plan slug keeps one plan's traffic on the node whose engines
        and plan cache are warm for it; the tenant suffix spreads a
        popular plan's many tenants over the ring instead of pinning the
        whole fleet's favorite shape to one node.
        """
        return f"{request.plan_key().slug}/{request.tenant}"

    def _load_of(self, name: str) -> float:
        return self._outstanding.get(name, 0.0)

    def _alive(self) -> list[ClusterNode]:
        return [node for node in self.nodes if node.alive]

    def submit(self, request: FFTRequest) -> FFTFuture:
        """Route one request to a replica; returns a cluster-level future.

        Raises the same typed errors a single server's ``submit`` does.
        A replica whose queue is full spills to the next node on the
        key's ring walk; only when every live replica refuses does the
        last rejection propagate.
        """
        if self._closed:
            raise ServerClosedError("cluster is closed")
        if not isinstance(request, FFTRequest):
            raise TypeError("submit() takes an FFTRequest")
        with self._lock:
            if self._draining:
                raise self._reject(
                    DrainingError(
                        "cluster is draining; admission resumes when it completes"
                    )
                )
        if not self._alive():
            raise ServerClosedError("no live nodes in the cluster")
        key = self.route_key(request)
        weight = float(np.asarray(request.x).nbytes)
        with self._lock:
            primary = self._router.route(key, self._load_of, weight)
        order = [primary] + [
            m for m in self._router.ring.preference(key) if m != primary
        ]
        self.metrics.counter("cluster.submitted", "requests").inc()
        last_reject: RejectedError | None = None
        for node_name in order:
            node = self._by_name[node_name]
            if not node.alive:
                continue
            try:
                with PLAN_CACHE.scoped(node_name):
                    inner = node.server.submit(request)
            except QueueFullError as exc:
                last_reject = exc
                continue
            except RejectedError as exc:
                raise self._reject(exc) from None
            break
        else:
            assert last_reject is not None
            raise self._reject(last_reject) from None
        outer = FFTFuture(request)
        entry = _Entry(request, outer, key, node_name, inner, weight)
        with self._lock:
            self._entries[id(outer)] = entry
            self._outstanding[node_name] += weight
        self.metrics.counter(
            "cluster.routed", "requests", {"node": node_name}
        ).inc()
        inner.add_done_callback(lambda fut, e=entry: self._on_inner_done(e, fut))
        return outer

    def _reject(self, exc: RejectedError) -> RejectedError:
        with self._lock:
            self._rejected[exc.reason] = self._rejected.get(exc.reason, 0) + 1
        self.metrics.counter(
            "cluster.rejected", "requests", {"reason": exc.reason}
        ).inc()
        return exc

    def _on_inner_done(self, entry: _Entry, fut: FFTFuture) -> None:
        """Copy a node future's outcome onto the cluster future.

        Runs on the resolving node's dispatch thread.  A superseded
        future (its node was killed after this future was created but
        before it resolved) is ignored — the re-queued replacement owns
        the outer future now.
        """
        with self._lock:
            if entry.inner is not fut:
                return
            self._entries.pop(id(entry.outer), None)
            self._outstanding[entry.node] = max(
                0.0, self._outstanding[entry.node] - entry.weight
            )
        outer = entry.outer
        outer.batch_id = fut.batch_id
        outer.batch_size = fut.batch_size
        outer.worker = fut.worker
        outer.requeues += fut.requeues
        outer.faulted = outer.faulted or fut.faulted
        outer.queue_wait_s = fut.queue_wait_s
        outer.finish_device_s = fut.finish_device_s
        exc = fut._exception
        if exc is None:
            with self._lock:
                self._completed += 1
            self.metrics.counter("cluster.completed", "requests").inc()
            outer._resolve(fut._result, next(self._completion_seq))
        else:
            with self._lock:
                self._failed += 1
            self.metrics.counter("cluster.failed", "requests").inc()
            outer._fail(exc, next(self._completion_seq))

    # ------------------------------------------------------------------
    # Drive + lifecycle
    # ------------------------------------------------------------------

    def run_pending(self) -> int:
        """Synchronously dispatch every node's queue; returns batch count.

        The deterministic drive mode (nodes built with ``start=False``):
        rounds of per-node :meth:`FFTServer.run_pending` until a full
        round moves nothing, so cross-node re-queues settle too.
        """
        total = 0
        while True:
            moved = 0
            for node in self._alive():
                with PLAN_CACHE.scoped(node.name):
                    moved += node.server.run_pending()
            total += moved
            if moved == 0:
                return total

    @property
    def elapsed(self) -> float:
        """Cluster makespan: the busiest node's simulated clock."""
        return max(
            (node.server.simulator.elapsed for node in self.nodes), default=0.0
        )

    @property
    def draining(self) -> bool:
        """True while cluster admission is paused."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Pause admission fleet-wide (idempotent)."""
        with self._lock:
            self._draining = True
        for node in self._alive():
            node.server.begin_drain()

    def end_drain(self) -> None:
        """Re-open admission after :meth:`begin_drain` (idempotent)."""
        with self._lock:
            self._draining = False
        for node in self._alive():
            node.server.end_drain()

    def drain(self, timeout: float | None = None) -> bool:
        """Quiesce every node; True when the whole fleet emptied."""
        self.begin_drain()
        try:
            ok = True
            for node in self._alive():
                ok = node.server.drain(timeout) and ok
        finally:
            self.end_drain()
        return ok

    def close(self, discard: bool = False) -> None:
        """Shut every node down (idempotent); see ``FFTServer.close``."""
        if self._closed:
            return
        self._closed = True
        for node in self.nodes:
            if node.alive:
                node.server.close(discard=discard)

    def __enter__(self) -> "FFTCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Node loss
    # ------------------------------------------------------------------

    def kill_node(self, node: int | str, reason: str = "chaos") -> int:
        """Lose a node: close its server, re-queue its work on survivors.

        Every request routed to the node and not yet resolved is
        re-submitted to the remaining replicas along its key's ring walk
        (admission runs again on the new node; a full queue spills
        onward).  Requests no survivor accepts fail with
        :class:`RequeueExhaustedError`; with no survivors at all they
        fail with :class:`ServerClosedError`.  Nothing strands: by
        return, every affected future is either re-queued or resolved.
        Returns the number of re-queued requests.
        """
        name = node if isinstance(node, str) else f"n{node}"
        target = self._by_name.get(name)
        if target is None:
            raise ValueError(f"no such node: {name}")
        with self._lock:
            if not target.alive:
                raise ValueError(f"node {name} is already dead")
            target.alive = False
            if name in self._router.ring:
                self._router.ring.remove(name)
            victims = [
                e
                for e in self._entries.values()
                if e.node == name and not e.outer.done()
            ]
            # Supersede before closing: the dead server's discard
            # resolutions must not reach the outer futures.
            for e in victims:
                e.inner = None
            self._outstanding[name] = 0.0
            self._node_losses += 1
        self.metrics.counter(
            "cluster.node.lost", "nodes", {"reason": reason}
        ).inc()
        if self.profiler is not None:
            self.profiler.tracer.emit(
                "host",
                f"cluster:node-loss:{name}",
                start=self.elapsed,
                seconds=0.0,
                node=name,
                reason=reason,
            )
        target.server.close(discard=True)
        requeued = 0
        for e in victims:
            if self._replace(e):
                requeued += 1
        with self._lock:
            self._requeued += requeued
        if requeued:
            self.metrics.counter("cluster.requeue.requests", "requests").inc(
                requeued
            )
        return requeued

    def _replace(self, entry: _Entry) -> bool:
        """Re-place one victim of a node loss; False when it failed out."""
        entry.outer.requeues += 1
        entry.outer.faulted = True
        last_reject: RejectedError | None = None
        for node_name in self._router.ring.preference(entry.route_key):
            node = self._by_name[node_name]
            if not node.alive:
                continue
            try:
                with PLAN_CACHE.scoped(node_name):
                    inner = node.server.submit(entry.request)
            except RejectedError as exc:
                last_reject = exc
                continue
            with self._lock:
                entry.inner = inner
                entry.node = node_name
                self._outstanding[node_name] += entry.weight
            self.metrics.counter(
                "cluster.routed", "requests", {"node": node_name}
            ).inc()
            inner.add_done_callback(
                lambda fut, e=entry: self._on_inner_done(e, fut)
            )
            return True
        with self._lock:
            self._entries.pop(id(entry.outer), None)
            self._failed += 1
        self.metrics.counter("cluster.failed", "requests").inc()
        if last_reject is not None:
            entry.outer._fail(
                RequeueExhaustedError(
                    f"no surviving node accepted the re-queued request; "
                    f"last rejection: {last_reject}"
                ),
                next(self._completion_seq),
            )
        else:
            entry.outer._fail(
                ServerClosedError("no live nodes to re-queue onto"),
                next(self._completion_seq),
            )
        return False

    # ------------------------------------------------------------------
    # Distributed transforms
    # ------------------------------------------------------------------

    def distributed_plan(
        self,
        shape: tuple[int, int, int] | int,
        decomposition: str = "slab",
        precision: str = "single",
        norm: str = "backward",
    ) -> DistributedFFT3D:
        """A decomposed plan spanning the cluster's live nodes."""
        return DistributedFFT3D(
            shape,
            n_nodes=len(self._alive()),
            decomposition=decomposition,
            device=self.device,
            precision=precision,
            norm=norm,
            interconnect=self.interconnect,
        )

    def execute_distributed(
        self,
        x: np.ndarray,
        decomposition: str = "slab",
        precision: str = "single",
        norm: str = "backward",
        inverse: bool = False,
    ) -> np.ndarray:
        """One transform too large for a card, spread over the fleet.

        Charges each live node's front card with its stage compute and
        the modeled all-to-all phases, so the exchange cost lands on the
        same clocks the serving path uses.
        """
        plan = self.distributed_plan(
            np.asarray(x).shape, decomposition, precision, norm
        )
        sims = [node.server.simulator for node in self._alive()]
        return plan.execute(x, inverse=inverse, simulators=sims)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ClusterStats:
        """Cluster totals plus every node's own :class:`ServeStats`."""
        snap = ClusterStats()
        with self._lock:
            snap.completed = self._completed
            snap.failed = self._failed
            snap.requeued = self._requeued
            snap.node_losses = self._node_losses
            snap.rejected = dict(self._rejected)
            snap.inflight = len(self._entries)
        for node in self.nodes:
            stats = node.server.stats()
            snap.nodes[node.name] = stats
            snap.node_alive[node.name] = node.alive
            snap.submitted += stats.submitted
            if node.alive:
                snap.queue_depth += stats.queue_depth
                if stats.worker_health:
                    for wid, state in stats.worker_health.items():
                        snap.worker_health[f"{node.name}/w{wid}"] = state
                else:
                    snap.worker_health[node.name] = "healthy"
            else:
                snap.worker_health[node.name] = "dead"
        return snap
