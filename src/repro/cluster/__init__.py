"""Cluster-scale serving: sharded multi-node simulation over a fabric.

The subsystem that scales the serving stack past one simulated machine:

* :mod:`repro.gpu.interconnect` — the inter-node fabric model (latency,
  bandwidth, bisection, fat-tree vs flat), the network analog of the
  PCIe model;
* :class:`~repro.cluster.distributed.DistributedFFT3D` — slab/pencil
  decomposed transforms with modeled all-to-all exchange phases,
  functionally validated against ``numpy.fft.fftn``;
* :class:`~repro.cluster.router.ConsistentHashRouter` — plan-key/tenant
  sharding with virtual nodes and bounded loads;
* :class:`~repro.cluster.cluster.FFTCluster` — N nodes x M cards, each an
  :class:`~repro.serve.server.FFTServer` replica, with node-loss drills
  and loss-free cross-node re-queue.
"""

from repro.cluster.cluster import ClusterNode, ClusterStats, FFTCluster
from repro.cluster.distributed import DistributedFFT3D
from repro.cluster.router import ConsistentHashRouter, HashRing
from repro.gpu.interconnect import (
    ETHERNET_10G,
    ETHERNET_100G,
    INFINIBAND_HDR,
    ClusterInterconnect,
    InterconnectLink,
    interconnect_for,
)

__all__ = [
    "ClusterNode",
    "ClusterStats",
    "FFTCluster",
    "DistributedFFT3D",
    "ConsistentHashRouter",
    "HashRing",
    "ClusterInterconnect",
    "InterconnectLink",
    "interconnect_for",
    "ETHERNET_10G",
    "ETHERNET_100G",
    "INFINIBAND_HDR",
]
