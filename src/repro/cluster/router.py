"""Consistent-hash routing tier for the simulated cluster.

Requests shard across :class:`~repro.serve.server.FFTServer` replicas by
consistent hashing of a route key derived from the plan-cache key — so
every request for one ``(shape, precision, norm, inverse)`` plan from one
tenant lands on the same node and its warm plan cache stays warm — with
Google's *bounded loads* refinement layered on top: a node already
carrying more than ``balance_factor`` times its fair share spills to the
next node on the key's ring walk instead of hot-spotting.

The ring uses virtual nodes (many hash points per physical node) so that
adding or removing a replica remaps only about ``1/N`` of the key space
— the property the stability test pins.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable

__all__ = ["HashRing", "ConsistentHashRouter"]


def _hash64(data: str) -> int:
    """Stable 64-bit ring position for ``data`` (blake2b, not ``hash()``)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each member contributes ``vnodes`` points on a 64-bit ring; a key is
    served by the first member point at or after the key's own hash,
    wrapping at the top.  :meth:`preference` extends that to the full
    distinct-member walk order, which is what bounded-load spilling and
    dead-node failover both traverse.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    @property
    def members(self) -> tuple[str, ...]:
        """Current members, sorted for determinism."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def _member_points(self, member: str) -> list[int]:
        return [_hash64(f"{member}#{i}") for i in range(self.vnodes)]

    def add(self, member: str) -> None:
        """Insert ``member``'s virtual nodes onto the ring."""
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        for point in self._member_points(member):
            # A 64-bit collision across vnode labels is effectively
            # impossible; first owner keeps the point if one happens.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = member
        self._members.add(member)

    def remove(self, member: str) -> None:
        """Remove ``member``'s virtual nodes from the ring."""
        if member not in self._members:
            raise ValueError(f"member {member!r} not on the ring")
        for point in self._member_points(member):
            if self._owners.get(point) == member:
                self._points.remove(point)
                del self._owners[point]
        self._members.discard(member)

    def preference(self, key: str) -> list[str]:
        """Distinct members in ring-walk order from ``key``'s position.

        The first entry is the key's home node; the rest are its spill /
        failover order.  Every live member appears exactly once.
        """
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, _hash64(key))
        seen: list[str] = []
        for i in range(len(self._points)):
            owner = self._owners[self._points[(start + i) % len(self._points)]]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._members):
                    break
        return seen

    def node_for(self, key: str) -> str:
        """The key's home member (first of :meth:`preference`)."""
        pref = self.preference(key)
        if not pref:
            raise LookupError("ring is empty")
        return pref[0]


class ConsistentHashRouter:
    """Bounded-load consistent-hash placement over a :class:`HashRing`.

    ``route(key, load_of, weight)`` walks the key's preference order and
    accepts the first member whose current load (any non-negative
    measure: outstanding requests, queued bytes) stays within
    ``balance_factor`` times the fair share after taking the new item.
    If every member is above the bound — a burst aimed at few keys — the
    least-loaded member on the walk takes it, so placement never fails
    while the ring has members.
    """

    def __init__(
        self,
        members: Iterable[str] = (),
        vnodes: int = 64,
        balance_factor: float = 1.25,
    ):
        if balance_factor < 1.0:
            raise ValueError("balance_factor must be at least 1.0")
        self.ring = HashRing(members, vnodes)
        self.balance_factor = balance_factor

    def route(
        self,
        key: str,
        load_of: Callable[[str], float] | None = None,
        weight: float = 1.0,
    ) -> str:
        """Pick the member for ``key`` (affinity first, balance bounded)."""
        order = self.ring.preference(key)
        if not order:
            raise LookupError("ring is empty")
        if load_of is None or len(order) == 1:
            return order[0]
        loads = {m: max(0.0, load_of(m)) for m in order}
        capacity = (
            self.balance_factor
            * (sum(loads.values()) + weight)
            / len(order)
        )
        for member in order:
            if loads[member] + weight <= capacity:
                return member
        return min(order, key=lambda m: (loads[m], order.index(m)))
