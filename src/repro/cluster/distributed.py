"""Distributed 3-D FFT executor: slab/pencil decomposition over nodes.

The functional generalization of :class:`repro.core.multi_gpu.MultiGpuFFT3D`
from PCIe-attached cards to network-attached *nodes*.  Each node
transforms its block of every 1-D stage with the same
:func:`~repro.fft.multirow.multirow_fft` engine the single-card path
uses, and the all-to-all redistributions between stages are modeled on
the :class:`~repro.gpu.interconnect.ClusterInterconnect` — functionally
a re-view of the full array (exact), temporally a charged exchange phase
on every node's simulator clock.

Stage order is X, then Y, then Z — identical to the single-card
five-step plan and to ``numpy.fft.fftn`` up to floating-point rounding,
so the differential sweep can pin both decompositions against numpy and
against the single-card path (documented ulp bounds, not bit identity:
the decomposed path batches rows in a different order, so the usual
O(eps * log n) summation-order noise applies).
"""

from __future__ import annotations

import numpy as np

from repro.core.decompose import block_ranges, decomposition_for
from repro.core.estimator import (
    DistributedFFT3DEstimate,
    estimate_distributed_fft3d,
)
from repro.fft.multirow import multirow_fft
from repro.fft.normalization import apply_norm
from repro.gpu.interconnect import ClusterInterconnect
from repro.gpu.simulator import DeviceSimulator
from repro.gpu.specs import DeviceSpec, GEFORCE_8800_GTX
from repro.util.validation import as_complex_array

__all__ = ["DistributedFFT3D"]


class DistributedFFT3D:
    """A transform decomposed across ``n_nodes`` simulated nodes.

    Parameters mirror :class:`~repro.core.api.GpuFFT3D` plus the cluster
    axis: node count, decomposition kind (``slab``/``pencil``) and the
    interconnect fabric pricing the exchanges.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] | int,
        n_nodes: int = 2,
        decomposition: str = "slab",
        device: DeviceSpec = GEFORCE_8800_GTX,
        precision: str = "single",
        norm: str = "backward",
        interconnect: ClusterInterconnect | None = None,
    ):
        if isinstance(shape, int):
            shape = (shape, shape, shape)
        self.shape = tuple(int(n) for n in shape)
        if len(self.shape) != 3:
            raise ValueError(f"shape must be 3-D, got {shape!r}")
        self.n_nodes = n_nodes
        self.device = device
        self.precision = precision
        self.norm = norm
        self.interconnect = interconnect or ClusterInterconnect()
        self._el = 8 if precision == "single" else 16
        self.decomposition = decomposition_for(
            decomposition, self.shape, n_nodes, self._el
        )
        self._estimate: DistributedFFT3DEstimate | None = None

    @property
    def kind(self) -> str:
        """The decomposition kind slug (``slab``/``pencil``)."""
        return self.decomposition.kind

    @property
    def total_elements(self) -> int:
        """Grid volume, the normalization divisor."""
        nz, ny, nx = self.shape
        return nz * ny * nx

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------

    def execute(
        self,
        x: np.ndarray,
        inverse: bool = False,
        simulators: list[DeviceSimulator] | None = None,
        label: str | None = None,
    ) -> np.ndarray:
        """Transform ``x``, staged exactly as the nodes would run it.

        With ``simulators`` (one per node, e.g. each node's front card)
        the per-node stage compute and the exchange phases are charged
        onto each node's clock, so the distributed transform lands on the
        same timeline — and, via the tracer hooks, the same Chrome trace
        — as everything else.
        """
        x = as_complex_array(x, self.precision)
        if x.shape != self.shape:
            raise ValueError(f"plan is for {self.shape}, got {x.shape}")
        if self.kind == "slab":
            out = self._execute_slab(x, inverse)
        else:
            out = self._execute_pencil(x, inverse)
        if simulators is not None:
            self._charge(simulators, label)
        return apply_norm(out, self.total_elements, self.norm, inverse)

    def _execute_slab(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        """Z-slab XY stages, one all-to-all, Y-block Z stage."""
        work = np.empty_like(x)
        for z0, z1 in self.decomposition.z_slabs:
            slab = multirow_fft(x[z0:z1], axis=2, inverse=inverse)   # X
            work[z0:z1] = multirow_fft(slab, axis=1, inverse=inverse)  # Y
        # All-to-all: regroup Z-slabs into Y-blocks (a re-view, exactly).
        out = np.empty_like(x)
        for y0, y1 in self.decomposition.y_slabs:
            out[:, y0:y1, :] = multirow_fft(
                work[:, y0:y1, :], axis=0, inverse=inverse  # Z
            )
        return out

    def _execute_pencil(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        """Three pencil stages separated by row/column all-to-alls."""
        pr, pc = self.decomposition.grid
        nz, ny, nx = self.shape
        z_rows = block_ranges(nz, pr)
        y_cols = block_ranges(ny, pc)
        x_cols = block_ranges(nx, pc)
        y_rows = block_ranges(ny, pr)

        # Stage 1: node (i, j) owns (nz/pr, ny/pc, nx) — transform X.
        work = np.empty_like(x)
        for z0, z1 in z_rows:
            for y0, y1 in y_cols:
                work[z0:z1, y0:y1, :] = multirow_fft(
                    x[z0:z1, y0:y1, :], axis=2, inverse=inverse
                )
        # Row all-to-all: X becomes distributed, Y becomes local.
        work2 = np.empty_like(x)
        for z0, z1 in z_rows:
            for x0, x1 in x_cols:
                work2[z0:z1, :, x0:x1] = multirow_fft(
                    work[z0:z1, :, x0:x1], axis=1, inverse=inverse
                )
        # Column all-to-all: Z becomes local.
        out = np.empty_like(x)
        for y0, y1 in y_rows:
            for x0, x1 in x_cols:
                out[:, y0:y1, x0:x1] = multirow_fft(
                    work2[:, y0:y1, x0:x1], axis=0, inverse=inverse
                )
        return out

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def estimate(self) -> DistributedFFT3DEstimate:
        """The decomposed transform's cost model (cached)."""
        if self._estimate is None:
            self._estimate = estimate_distributed_fft3d(
                self.device,
                self.shape,
                self.n_nodes,
                self.kind,
                self.precision,
                self.interconnect,
            )
        return self._estimate

    def _charge(
        self, simulators: list[DeviceSimulator], label: str | None
    ) -> None:
        """Charge each node's clock with its share of the transform.

        Stage compute interleaves with exchange phases: slab charges
        ``local/2, exchange, local/2``; pencil ``local/3`` around each of
        its two exchanges.  Every node advances by the same amounts — the
        decomposition is even by construction, and an all-to-all is a
        barrier: nobody leaves it before the slowest message lands.
        """
        if len(simulators) != self.n_nodes:
            raise ValueError(
                f"{self.kind} plan spans {self.n_nodes} nodes, "
                f"got {len(simulators)} simulators"
            )
        est = self.estimate()
        tag = label or f"dist-{self.kind}{self.n_nodes}"
        n_stages = len(est.exchange_phase_seconds) + 1
        stage_s = est.local_seconds / n_stages
        for sim in simulators:
            with sim.annotate(plan=tag):
                sim.charge(f"{tag}:stage1", stage_s, kind="kernel")
                for k, exch_s in enumerate(est.exchange_phase_seconds, 1):
                    sim.charge(f"{tag}:all-to-all{k}", exch_s, kind="host")
                    sim.charge(f"{tag}:stage{k + 1}", stage_s, kind="kernel")
