"""Index arithmetic used by FFT decompositions.

FFT decompositions (Cooley-Tukey, four-step, the paper's 16x16 split of a
256-point transform) permanently juggle between a flat index ``n`` and its
digits in a mixed radix system.  This module centralizes that arithmetic so
the transform code can stay readable.

Conventions
-----------
For radices ``(r0, r1, ..., rk)`` a flat index decomposes as::

    n = d0 + r0 * (d1 + r1 * (d2 + ...))

i.e. ``d0`` is the *fastest varying* (least significant) digit.  This matches
Fortran/column-major array order used in the paper's pseudo code
``V(256,16,16,16,16)`` where the first index varies fastest.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "is_power_of_two",
    "ilog2",
    "digit_reverse",
    "digit_reverse_permutation",
    "split_index",
    "merge_index",
    "mixed_radix_digits",
    "mixed_radix_number",
]


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two (1 counts)."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer log2 of a power of two.

    Raises ``ValueError`` for non powers of two so callers fail loudly
    instead of silently mis-planning a transform.
    """
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def split_index(n: int | np.ndarray, radix: int):
    """Split ``n = lo + radix * hi`` and return ``(lo, hi)``.

    Works elementwise on arrays.
    """
    return n % radix, n // radix


def merge_index(lo: int | np.ndarray, hi: int | np.ndarray, radix: int):
    """Inverse of :func:`split_index`: ``lo + radix * hi``."""
    return lo + radix * hi


def mixed_radix_digits(n: int, radices: Sequence[int]) -> tuple[int, ...]:
    """Digits of ``n`` in the given mixed radix system, fastest digit first.

    >>> mixed_radix_digits(7, (2, 4))
    (1, 3)
    """
    digits = []
    for r in radices:
        if r <= 0:
            raise ValueError("radices must be positive")
        n, d = divmod(n, r)
        digits.append(d)
    if n != 0:
        raise ValueError("index out of range for the given radices")
    return tuple(digits)


def mixed_radix_number(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`mixed_radix_digits`.

    >>> mixed_radix_number((1, 3), (2, 4))
    7
    """
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    n = 0
    for d, r in zip(reversed(digits), reversed(radices)):
        if not 0 <= d < r:
            raise ValueError(f"digit {d} out of range for radix {r}")
        n = n * r + d
    return n


def digit_reverse(n: int, radices: Sequence[int]) -> int:
    """Digit-reverse ``n``: write digits in ``radices`` order, read reversed.

    With ``radices == (2,) * k`` this is classic FFT bit reversal.  The
    reversed value is interpreted in the *reversed* radix system, which is
    what a decimation-in-time reordering requires for mixed radices.
    """
    digits = mixed_radix_digits(n, radices)
    return mixed_radix_number(tuple(reversed(digits)), tuple(reversed(radices)))


def digit_reverse_permutation(radices: Sequence[int]) -> np.ndarray:
    """Permutation array ``p`` with ``p[n] = digit_reverse(n, radices)``.

    ``x[digit_reverse_permutation(radices)]`` reorders a natural-order array
    into digit-reversed order.  The permutation is an involution only when
    the radix list is palindromic (e.g. pure radix-2).
    """
    total = 1
    for r in radices:
        total *= r
    return np.asarray(
        [digit_reverse(n, radices) for n in range(total)], dtype=np.intp
    )
