"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's tables report; this
is the shared renderer.  Output is monospace-aligned, suitable both for the
terminal and for inclusion in EXPERIMENTS.md fenced blocks.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float with ``digits`` significant digits, like the paper.

    The paper mixes precisions (``71.5``, ``5.17``, ``0.216``); three
    significant digits reproduces that style for the magnitudes involved.
    """
    if value == 0:
        return "0"
    formatted = f"{value:.{digits}g}"
    # Avoid exponent notation for the magnitudes we print.
    if "e" in formatted or "E" in formatted:
        formatted = f"{value:.{digits}f}"
    return formatted


class Table:
    """A small column-aligned table builder.

    >>> t = Table(["Model", "GFLOPS"], title="Figure 1")
    >>> t.add_row(["8800 GTX", 84.4])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[Any]) -> None:
        """Append one row; floats are formatted to three significant digits."""
        cells = [
            format_float(c) if isinstance(c, float) else str(c) for c in cells
        ]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(line(["-" * w for w in widths]))
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
