"""Argument validation helpers with informative errors.

Transform entry points validate aggressively: an FFT silently run on a
mis-shaped or real-valued array produces numbers, not errors, and those
numbers are wrong.  Validation failures raise early with a message naming
the offending argument.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_power_of_two",
    "check_complex_array",
    "check_cube",
    "as_complex_array",
]

_COMPLEX_DTYPES = (np.complex64, np.complex128)


def check_power_of_two(n: int, name: str = "n") -> int:
    """Validate that ``n`` is a positive power of two and return it."""
    if not isinstance(n, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(n).__name__}")
    n = int(n)
    if n <= 0 or (n & (n - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {n}")
    return n


def as_complex_array(x, precision: str | None = None) -> np.ndarray:
    """Coerce ``x`` to a C-contiguous complex ndarray.

    ``precision`` of ``"single"``/``"double"`` forces complex64/complex128;
    ``None`` keeps an existing complex dtype or promotes real input to
    complex128.
    """
    x = np.asarray(x)
    if precision == "single":
        dtype = np.complex64
    elif precision == "double":
        dtype = np.complex128
    elif precision is None:
        dtype = x.dtype if x.dtype in _COMPLEX_DTYPES else np.complex128
    else:
        raise ValueError(f"unknown precision {precision!r}")
    return np.ascontiguousarray(x, dtype=dtype)


def check_complex_array(x, name: str = "x") -> np.ndarray:
    """Require a complex ndarray (no silent promotion) and return it."""
    x = np.asarray(x)
    if x.dtype not in _COMPLEX_DTYPES:
        raise TypeError(
            f"{name} must be complex64 or complex128, got {x.dtype}; "
            "use as_complex_array() to promote real input explicitly"
        )
    return x


def check_cube(x, name: str = "x") -> np.ndarray:
    """Require a 3-D array with power-of-two extents along each axis."""
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"{name} must be 3-D, got shape {x.shape}")
    for axis, n in enumerate(x.shape):
        if n <= 0 or (n & (n - 1)) != 0:
            raise ValueError(
                f"{name} axis {axis} has extent {n}; all extents must be "
                "powers of two (paper scope, Section 1)"
            )
    return x
