"""Unit conversions and FFT operation-count conventions.

The paper computes GFLOPS with the standard radix-2 convention:

    flops(1-D FFT of size N) = 5 N log2(N)
    flops(3-D FFT of size N^3) = 15 N^3 log2(N)

(Section 4.1: "the number of floating-point operations of size N^3 is
assumed to be 15 N^3 log2 N").  We keep the same convention everywhere so
our GFLOPS figures are directly comparable with the paper's.
"""

from __future__ import annotations

import math

__all__ = [
    "KB",
    "MB",
    "GB",
    "GIB",
    "bytes_per_complex",
    "flops_1d_fft",
    "flops_3d_fft",
    "gflops_3d_fft",
    "to_gbytes_per_s",
    "to_gflops",
]

# Decimal units (memory bandwidth is conventionally decimal: 86.4 GB/s).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
# Binary unit (device memory capacity: "512MByte" in the paper is binary).
GIB = 1 << 30


def bytes_per_complex(precision: str = "single") -> int:
    """Size of one complex element: 8 bytes single, 16 double."""
    if precision == "single":
        return 8
    if precision == "double":
        return 16
    raise ValueError(f"unknown precision {precision!r}")


def flops_1d_fft(n: int, batch: int = 1) -> float:
    """Nominal flop count of ``batch`` complex 1-D FFTs of size ``n``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 5.0 * n * math.log2(n) * batch


def flops_3d_fft(nx: int, ny: int | None = None, nz: int | None = None) -> float:
    """Nominal flop count of a 3-D FFT of shape ``(nx, ny, nz)``.

    For a cube this reduces to the paper's ``15 N^3 log2 N``.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    total = nx * ny * nz
    return 5.0 * total * (math.log2(nx) + math.log2(ny) + math.log2(nz))


def gflops_3d_fft(n: int, seconds: float) -> float:
    """GFLOPS of a cubic 3-D FFT of size ``n^3`` completed in ``seconds``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops_3d_fft(n) / seconds / 1e9


def to_gbytes_per_s(n_bytes: float, seconds: float) -> float:
    """Bandwidth in (decimal) GB/s."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return n_bytes / seconds / GB


def to_gflops(flops: float, seconds: float) -> float:
    """Throughput in GFLOPS."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops / seconds / 1e9
