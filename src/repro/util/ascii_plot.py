"""ASCII bar charts for reproducing the paper's figures in a terminal.

Figures 1-3 of the paper are grouped bar charts (three algorithms x three
GPUs).  We render the same data textually so the benchmark harness needs no
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the max value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))  # doctest: +SKIP
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    vmax = max(values.values())
    if vmax < 0:
        raise ValueError("bar_chart values must be non-negative")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        if v < 0:
            raise ValueError("bar_chart values must be non-negative")
        n = 0 if vmax == 0 else round(width * v / vmax)
        lines.append(f"{label.ljust(label_w)} |{'#' * n} {v:.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render grouped bars: one block per group, one bar per series.

    Mirrors the paper's figure layout (groups = GPU models, series =
    algorithms).  All bars share one scale so cross-group comparison works.
    """
    if not groups or not series:
        raise ValueError("grouped_bar_chart needs groups and series")
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(vals)} values for {len(groups)} groups"
            )
    vmax = max(max(vals) for vals in series.values())
    label_w = max(len(s) for s in series)
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        lines.append(f"[{group}]")
        for name, vals in series.items():
            v = vals[gi]
            if v < 0:
                raise ValueError("values must be non-negative")
            n = 0 if vmax == 0 else round(width * v / vmax)
            lines.append(f"  {name.ljust(label_w)} |{'#' * n} {v:.1f}{unit}")
    return "\n".join(lines)
