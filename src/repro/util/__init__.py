"""Shared utilities: index manipulation, validation, units, formatting.

These helpers are deliberately dependency-light (NumPy only) and are used by
every other subpackage.  Nothing in here is specific to the paper's
algorithm; it is the generic substrate glue.
"""

from repro.util.indexing import (
    digit_reverse,
    digit_reverse_permutation,
    is_power_of_two,
    ilog2,
    split_index,
    merge_index,
    mixed_radix_digits,
    mixed_radix_number,
)
from repro.util.units import (
    GIB,
    GB,
    MB,
    KB,
    gflops_3d_fft,
    flops_1d_fft,
    flops_3d_fft,
    bytes_per_complex,
    to_gbytes_per_s,
    to_gflops,
)
from repro.util.validation import (
    check_power_of_two,
    check_complex_array,
    check_cube,
    as_complex_array,
)
from repro.util.tables import Table, format_float
from repro.util.ascii_plot import bar_chart, grouped_bar_chart

__all__ = [
    "digit_reverse",
    "digit_reverse_permutation",
    "is_power_of_two",
    "ilog2",
    "split_index",
    "merge_index",
    "mixed_radix_digits",
    "mixed_radix_number",
    "GIB",
    "GB",
    "MB",
    "KB",
    "gflops_3d_fft",
    "flops_1d_fft",
    "flops_3d_fft",
    "bytes_per_complex",
    "to_gbytes_per_s",
    "to_gflops",
    "check_power_of_two",
    "check_complex_array",
    "check_cube",
    "as_complex_array",
    "Table",
    "format_float",
    "bar_chart",
    "grouped_bar_chart",
]
