"""repro — reproduction of Nukada et al., "Bandwidth Intensive 3-D FFT
kernel for GPUs using CUDA" (SC 2008).

Layered architecture (see DESIGN.md):

* :mod:`repro.fft` — from-scratch FFT math (codelets, Stockham, four-step,
  multirow, 1/2/3-D transforms, plans).
* :mod:`repro.gpu` — CUDA-class GPU performance simulator (coalescing,
  GDDR row-buffer DRAM, occupancy, instruction issue, PCIe, power).
* :mod:`repro.core` — the paper's contribution: the bandwidth-intensive
  five-step 3-D FFT as simulated kernels, the access-pattern taxonomy, the
  out-of-core 512^3 extension, and the end-to-end estimator.
* :mod:`repro.baselines` — conventional six-step GPU FFT, CUFFT-like and
  FFTW-like baselines.
* :mod:`repro.obs` — observability: tracing, metrics, Chrome-trace export
  and timeline invariant validation for the simulated pipeline.
* :mod:`repro.apps` — ZDOCK-style docking, spectral solvers, convolution.
* :mod:`repro.harness` — per-table/figure experiment registry and reports.

1-D transforms live at ``repro.fft.fft``/``repro.fft.ifft`` (not re-exported
here: a top-level ``fft`` name would shadow the subpackage).
"""

from repro.fft import fft2d, ifft2d, fft3d, ifft3d, rfft, irfft

__version__ = "1.0.0"

__all__ = [
    "fft2d",
    "ifft2d",
    "fft3d",
    "ifft3d",
    "rfft",
    "irfft",
    "__version__",
]
