"""Compiled five-step execution: table bundles + the five-call sequence.

A :class:`CompiledFiveStep` is the compiled counterpart of one
:class:`~repro.core.five_step.FiveStepPlan`: it holds the float-viewed
twiddle tables (taken from the same
:data:`~repro.fft.twiddle.DEFAULT_CACHE` the NumPy reference reads, so
both paths consume identical constants) and drives the emitted kernels
through the exact pipeline the reference executes:

    1. ``mr_a[rz2]``  state (a,b,c,d,nx) -> (b,c,d,a,nx), wz fused
    2. ``mr_b[rz1]``  -> (c,d,b,a,nx)
    3. ``mr_a[ry2]``  -> (d,b,a,c,nx), wy fused
    4. ``mr_b[ry1]``  -> (b,a,d,c,nx)
    5. ``s5[nx]``     in place along the contiguous lines

with one ping-pong work buffer: x -> work -> out -> work -> out -> out.
``out`` may alias ``x`` (the batched engine transforms device buffers in
place): step 1 is the only reader of ``x`` and step 2 is the first
writer of ``out``.  Instances are stateless between calls — all scratch
is caller-provided or per-call — so one compiled plan is safely shared
across server workers, exactly like the plan it accelerates.

Inverse transforms pass ``sgn=-1``: every load and store flips the
imaginary sign, which together with the *forward* twiddle tables is
bit-equivalent to the reference's ``conj(F(conj(x)))`` sandwich with
conjugated tables (conjugation distributes exactly over the kernels'
sums, products and FMAs).
"""

from __future__ import annotations

import numpy as np

from repro.fft.twiddle import DEFAULT_CACHE, TwiddleCache
from repro.jit import emit

__all__ = ["supports_shape", "CompiledFiveStep"]


def supports_shape(rz1: int, rz2: int, ry1: int, ry2: int, nx: int) -> bool:
    """True when emitted kernels cover this plan geometry.

    The four axis-split radices must each have a straight-line codelet
    and the X extent an emitted step-5 kernel; anything else (512-point
    axes from out-of-core slabs, exotic splits) stays on the NumPy path.
    """
    return (
        all(r in emit.CODELET_RADICES for r in (rz1, rz2, ry1, ry2))
        and nx in emit.STEP5_SIZES
    )


def _fview(arr: np.ndarray, rdt) -> np.ndarray:
    return np.ascontiguousarray(arr).view(rdt).reshape(-1)


class CompiledFiveStep:
    """One plan's compiled kernels + tables, ready to execute.

    Parameters
    ----------
    shape, precision:
        The plan geometry (must satisfy :func:`supports_shape` after
        axis splitting).
    rz1, rz2, ry1, ry2:
        The plan's axis-split radices (from
        :func:`repro.core.five_step.split_axis`).
    kernels:
        ``{"multirow_a": {radix: fn}, "multirow_b": ..., "step5": ...}``
        — either the ctypes entry points of
        :class:`repro.jit.cc.CJitLibrary` or (numba-jitted or plain)
        functions from :mod:`repro.jit.loops`.
    needs_scratch:
        True for the Python/numba kernels, whose step-5 takes an
        explicit accumulator line (the C kernels use a stack local).
    twiddles:
        Table source; defaults to the process-wide cache.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        precision: str,
        rz1: int,
        rz2: int,
        ry1: int,
        ry2: int,
        kernels: dict,
        needs_scratch: bool,
        twiddles: TwiddleCache | None = None,
    ):
        if not supports_shape(rz1, rz2, ry1, ry2, shape[2]):
            raise ValueError(f"no compiled kernels for shape {shape}")
        cache = twiddles or DEFAULT_CACHE
        self.shape = shape
        self.precision = precision
        self._radices = (rz2, rz1, ry2, ry1)  # (a, b, c, d)
        self._nx = shape[2]
        cdt = np.dtype(np.complex64 if precision == "single" else np.complex128)
        self._cdtype = cdt
        self._rdtype = np.dtype(np.float32 if precision == "single" else np.float64)
        rdt = self._rdtype
        self._kernels = kernels
        self._needs_scratch = needs_scratch
        # Forward tables only — sgn handles the inverse (module docstring).
        self._wz = _fview(cache.four_step(rz1, rz2, precision), rdt)
        self._wy = _fview(cache.four_step(ry1, ry2, precision), rdt)
        r1, r2 = emit.step5_split(self._nx)
        if r2 == 1:
            self._w5 = np.zeros(2, rdt)  # unused by the direct-16 kernel
        else:
            self._w5 = _fview(cache.four_step_cast(r1, r2, cdt), rdt)
        self._ctab = _fview(
            np.concatenate([cache.codelet8(cdt), cache.half(16, cdt)]), rdt
        )
        self._sgn = {False: rdt.type(1.0), True: rdt.type(-1.0)}

    def warm(self) -> None:
        """Force kernel specialization with minimal dummy calls.

        Numba compiles per dtype signature on first call; warming here
        moves that cost into the plan's observable ``jit.compile`` span
        instead of its first transform.  Cheap no-op for ctypes kernels.
        """
        rdt = self._rdtype
        one = rdt.type(1.0)
        ctab = self._ctab
        for r in sorted(set(self._radices)):
            buf = np.zeros(2 * r * 16, rdt)
            out = np.zeros(2 * r * 16, rdt)
            w = np.zeros(2 * r, rdt)
            self._kernels["multirow_a"][r](buf, out, w, ctab, 1, 1, 1, 16, one)
            self._kernels["multirow_b"][r](buf, out, ctab, 1, 1, 1, 16, one)
        line = np.zeros(2 * self._nx, rdt)
        s5 = self._kernels["step5"][self._nx]
        if self._needs_scratch:
            s5(line, self._w5, ctab, np.empty(2 * self._nx, rdt), 1, one)
        else:
            s5(line, self._w5, ctab, 1, one)

    def run(
        self,
        x: np.ndarray,
        out: np.ndarray,
        work: np.ndarray,
        inverse: bool = False,
    ) -> None:
        """Transform C-contiguous ``x`` into ``out`` (may alias ``x``).

        ``work`` is a caller-owned scratch array of the plan's shape and
        dtype (from the plan's workspace arena on the pooled path); its
        contents are clobbered.
        """
        rdt = self._rdtype
        a, b, c, d = self._radices
        nx = self._nx
        sgn = self._sgn[bool(inverse)]
        xf = x.reshape(-1).view(rdt)
        wf = work.reshape(-1).view(rdt)
        of = out.reshape(-1).view(rdt)
        mr_a = self._kernels["multirow_a"]
        mr_b = self._kernels["multirow_b"]
        s5 = self._kernels["step5"][nx]
        mr_a[a](xf, wf, self._wz, self._ctab, b, c, d, nx, sgn)
        mr_b[b](wf, of, self._ctab, c, d, a, nx, sgn)
        mr_a[c](of, wf, self._wy, self._ctab, d, b, a, nx, sgn)
        mr_b[d](wf, of, self._ctab, b, a, c, nx, sgn)
        if self._needs_scratch:
            acc = np.empty(2 * nx, rdt)
            s5(of, self._w5, self._ctab, acc, a * b * c * d, sgn)
        else:
            s5(of, self._w5, self._ctab, a * b * c * d, sgn)
