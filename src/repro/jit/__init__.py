"""JIT-compiled hot path: backend registry and compiled-plan factory.

The five-step transform's NumPy implementation is the *reference oracle*
— always present, always correct.  This package provides optional
compiled backends for the same kernels, selected per plan:

``"numpy"``
    The reference path (default everywhere; zero behavior change).
``"numba"``
    The generated loop kernels (:mod:`repro.jit.loops`) under
    ``@njit(cache=True, nogil=True)``.  Requires the optional ``numba``
    package (``pip install repro[jit]``).
``"cjit"``
    The same kernels emitted as C, compiled at runtime by the system
    toolchain and bound via ctypes (:mod:`repro.jit.cc`).  Requires a C
    compiler on PATH; matches NumPy bit-for-bit on FMA hardware.
``"auto"``
    The best available: numba, else cjit, else numpy.

Resolution (:func:`resolve_backend`) never raises on a missing backend —
an explicit ``backend="numba"`` on a numba-less machine degrades to
``"numpy"`` — because serving configuration must be portable across
heterogeneous fleets.  Shape support is a separate check
(:func:`repro.jit.compiled.supports_shape`, applied by
:class:`~repro.core.five_step.FiveStepPlan`): unsupported geometries
fall back per plan, again to NumPy.

Compile events are observable: :func:`add_compile_observer` feeds the
profiler's ``plan_cache.compiles{kind=jit}`` counters, and the execution
engines charge the wall-clock warm-up as a ``*-jit.compile`` host span.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.jit.compiled import CompiledFiveStep, supports_shape

__all__ = [
    "BACKENDS",
    "available_backends",
    "backend_available",
    "resolve_backend",
    "supports_shape",
    "compile_plan",
    "CompiledFiveStep",
    "add_compile_observer",
    "remove_compile_observer",
]

#: Every selectable backend name (``"auto"`` resolves to one of these).
BACKENDS = ("numpy", "numba", "cjit")

_observers: list[Callable[[str, float], None]] = []
_observer_lock = threading.Lock()


def backend_available(name: str) -> bool:
    """Availability of one concrete backend on this machine."""
    if name == "numpy":
        return True
    if name == "numba":
        from repro.jit import nb

        return nb.available()
    if name == "cjit":
        from repro.jit import cc

        return cc.available()
    raise ValueError(f"unknown backend {name!r} (expected one of {BACKENDS})")


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable on this machine, preference order."""
    return tuple(b for b in ("numba", "cjit", "numpy") if backend_available(b))


def resolve_backend(name: str) -> str:
    """Map a requested backend to the concrete one that will run.

    ``"auto"`` picks the best available; an explicit compiled backend
    that is not available degrades to ``"numpy"`` (clean fallback is the
    contract — see the module docstring).
    """
    if name == "auto":
        return available_backends()[0]
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} (expected 'auto' or one of {BACKENDS})"
        )
    return name if backend_available(name) else "numpy"


def add_compile_observer(fn: Callable[[str, float], None]):
    """Subscribe ``fn(backend, seconds)`` to kernel-compile events."""
    with _observer_lock:
        _observers.append(fn)
    return fn


def remove_compile_observer(fn) -> None:
    """Unsubscribe a :func:`add_compile_observer` handle (idempotent)."""
    with _observer_lock:
        if fn in _observers:
            _observers.remove(fn)


def _notify_compile(backend: str, seconds: float) -> None:
    with _observer_lock:
        observers = list(_observers)
    for fn in observers:
        fn(backend, seconds)


def compile_plan(
    backend: str,
    shape: tuple[int, int, int],
    precision: str,
    rz1: int,
    rz2: int,
    ry1: int,
    ry2: int,
    twiddles=None,
) -> tuple[CompiledFiveStep, float]:
    """Build the compiled executor for one plan geometry.

    Returns ``(compiled, wall_seconds)`` where ``wall_seconds`` is the
    time spent compiling/loading kernels *in this call* (0.0 when the
    process-wide kernel library was already warm) — the caller charges
    it as the plan's ``jit.compile`` span.  Raises ``ValueError`` for
    the numpy backend or unsupported geometry (resolution and shape
    checks belong to the caller).
    """
    if backend not in ("numba", "cjit"):
        raise ValueError(f"backend {backend!r} has no compiled executor")
    t0 = time.perf_counter()
    if backend == "numba":
        from repro.jit import nb

        kernels, needs_scratch = nb.kernels(), True
    else:
        from repro.jit import cc

        kernels, needs_scratch = None, False
        lib = cc.load_library()
        rdt = "float32" if precision == "single" else "float64"
        kernels = lib.kernels(rdt)
    compiled = CompiledFiveStep(
        shape,
        precision,
        rz1,
        rz2,
        ry1,
        ry2,
        kernels,
        needs_scratch,
        twiddles=twiddles,
    )
    compiled.warm()
    wall = time.perf_counter() - t0
    _notify_compile(backend, wall)
    return compiled, wall
