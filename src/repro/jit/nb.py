"""Numba binding for the generated loop kernels.

When :mod:`numba` is importable, the generated kernels in
:mod:`repro.jit.loops` are wrapped with ``@njit(cache=True, nogil=True)``:

- ``cache=True`` persists the compiled machine code next to the source,
  so warm-up is paid once per machine rather than once per process;
- ``nogil=True`` releases the GIL for the duration of every kernel call,
  which is what turns ``FFTServer(n_workers>1)`` dispatch overlap into
  real parallel compute.

The import of numba itself is deferred to first use: merely resolving
backends must stay cheap and must work on machines without numba (where
:func:`available` is False and the registry falls back to NumPy).
"""

from __future__ import annotations

import importlib.util
import threading

__all__ = ["available", "kernels"]

_lock = threading.Lock()
_kernels: dict | None = None


def available() -> bool:
    """True when the numba package is importable (no import performed)."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def kernels() -> dict:
    """The jitted kernel tables (compiled lazily, memoized process-wide).

    Returns the same ``{"multirow_a": {radix: fn}, ...}`` structure as
    :meth:`repro.jit.cc.CJitLibrary.kernels` but with dtype-generic
    functions (numba specializes per signature on first call).
    """
    global _kernels
    with _lock:
        if _kernels is not None:
            return _kernels
    import numba

    from repro.jit import loops

    njit = numba.njit(cache=True, nogil=True)
    jitted = {
        "multirow_a": {r: njit(fn) for r, fn in loops.MULTIROW_A.items()},
        "multirow_b": {r: njit(fn) for r, fn in loops.MULTIROW_B.items()},
        "step5": {n: njit(fn) for n, fn in loops.STEP5.items()},
    }
    with _lock:
        if _kernels is None:
            _kernels = jitted
    return _kernels
