"""Self-hosted C backend: runtime compilation, caching and binding.

The ``numba`` package cannot be assumed present (the whole point of the
backend registry is clean degradation), but a C toolchain usually can —
every manylinux build box, CI runner and HPC login node ships one.  This
module turns the emitted kernel source (:func:`repro.jit.emit.c_module`)
into a loadable shared library:

1. **Probe** the running NumPy's complex-multiply semantics.  NumPy's
   SIMD complex product contracts to FMA form on FMA hardware; a tiny
   probe library computes both candidate forms and the emitter is told
   which one NumPy actually used, so the main kernels reproduce the
   reference bit-for-bit where the hardware allows (DESIGN.md §18).
2. **Compile** once per distinct source text: the library lands in a
   content-addressed on-disk cache (``$REPRO_JIT_CACHE`` or a per-user
   tmp directory), so later processes just ``dlopen`` — warm-up cost is
   paid once per machine, not once per process.
3. **Bind** via :mod:`ctypes` with ``ndpointer`` signatures.  ``ctypes``
   releases the GIL for the duration of every call, which is what gives
   ``FFTServer(n_workers>1)`` real parallel compute on the compiled path.

Everything here degrades to ``None``/``False`` rather than raising when
no compiler exists; the registry then resolves plans back to NumPy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.jit import emit

__all__ = ["available", "cache_dir", "cmul_modes", "load_library", "CJitLibrary"]

_lock = threading.Lock()
_compiler: list[str] | None | bool = False  # False = not probed yet
_probe_lib: ctypes.CDLL | None | bool = False
_modes: dict[str, str] | None = None
_library: "CJitLibrary | None" = None
_compile_seconds: float = 0.0

_PROBE_SRC = """\
#include <math.h>
void probe_f(const float* a, const float* b, float* fma_out,
             float* naive_out, long n) {
    for (long i = 0; i < n; i++) {
        const float ar = a[2*i], ai = a[2*i+1];
        const float br = b[2*i], bi = b[2*i+1];
        fma_out[2*i]     = fmaf(ar, br, -(ai * bi));
        fma_out[2*i+1]   = fmaf(ar, bi, ai * br);
        naive_out[2*i]   = ar * br - ai * bi;
        naive_out[2*i+1] = ar * bi + ai * br;
    }
}
void probe_d(const double* a, const double* b, double* fma_out,
             double* naive_out, long n) {
    for (long i = 0; i < n; i++) {
        const double ar = a[2*i], ai = a[2*i+1];
        const double br = b[2*i], bi = b[2*i+1];
        fma_out[2*i]     = fma(ar, br, -(ai * bi));
        fma_out[2*i+1]   = fma(ar, bi, ai * br);
        naive_out[2*i]   = ar * br - ai * bi;
        naive_out[2*i+1] = ar * bi + ai * br;
    }
}
"""


def cache_dir() -> Path:
    """The on-disk library cache (``$REPRO_JIT_CACHE`` overrides)."""
    env = os.environ.get("REPRO_JIT_CACHE")
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else "u"
    return Path(tempfile.gettempdir()) / f"repro-jit-{uid}"


def _find_compiler() -> list[str] | None:
    global _compiler
    with _lock:
        if _compiler is not False:
            return _compiler
    found = None
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            found = [path]
            break
    with _lock:
        _compiler = found
    return found


def _build(source: str, tag: str) -> ctypes.CDLL:
    """Compile ``source`` (cached by content hash) and load it."""
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler on PATH")
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    cdir = cache_dir()
    cdir.mkdir(parents=True, exist_ok=True)
    so_path = cdir / f"{tag}-{digest}.so"
    if not so_path.exists():
        c_path = cdir / f"{tag}-{digest}.c"
        c_path.write_text(source)
        tmp = cdir / f"{tag}-{digest}.{os.getpid()}.so.tmp"
        flags = ["-O3", "-march=native", "-ffp-contract=off", "-fno-math-errno"]
        base = ["-fPIC", "-shared", str(c_path), "-o", str(tmp), "-lm"]
        result = subprocess.run(
            compiler + flags + base, capture_output=True, text=True
        )
        if result.returncode != 0:
            # -march=native is a best-effort vectorization hint; some
            # toolchains (older cross compilers) reject it.
            result = subprocess.run(
                compiler + flags[:1] + flags[2:] + base,
                capture_output=True,
                text=True,
            )
        if result.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise RuntimeError(f"cjit compile failed: {result.stderr[:2000]}")
        os.replace(tmp, so_path)  # atomic: concurrent builders converge
    return ctypes.CDLL(str(so_path))


def _probe_library() -> ctypes.CDLL | None:
    global _probe_lib
    with _lock:
        if _probe_lib is not False:
            return _probe_lib
    try:
        lib = _build(_PROBE_SRC, "probe")
        for name, rdt in (("probe_f", np.float32), ("probe_d", np.float64)):
            ptr = np.ctypeslib.ndpointer(rdt, flags="C_CONTIGUOUS")
            getattr(lib, name).argtypes = [ptr, ptr, ptr, ptr, ctypes.c_long]
            getattr(lib, name).restype = None
    except Exception:
        lib = None
    with _lock:
        _probe_lib = lib
    return lib


def available() -> bool:
    """True when a working C toolchain compiled and loaded the probe."""
    return _probe_library() is not None


def cmul_modes() -> dict[str, str]:
    """NumPy's complex-multiply form per scalar type: ``"fma"``/``"naive"``.

    Compares NumPy's own complex product against both candidate forms
    computed by the probe library; the form that reproduces NumPy
    *bitwise* on every sample wins (``"naive"`` when neither does — the
    emitted kernels are then ulp-bounded rather than bit-identical).
    """
    global _modes
    with _lock:
        if _modes is not None:
            return _modes
    lib = _probe_library()
    modes: dict[str, str] = {}
    rng = np.random.default_rng(20080815)
    for key, cdt, rdt, fn in (
        ("float", np.complex64, np.float32, "probe_f"),
        ("double", np.complex128, np.float64, "probe_d"),
    ):
        if lib is None:
            modes[key] = "naive"
            continue
        n = 4096
        a = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(cdt)
        b = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(cdt)
        ref = (a * b).view(rdt)
        fma_out = np.empty(2 * n, rdt)
        naive_out = np.empty(2 * n, rdt)
        getattr(lib, fn)(a.view(rdt), b.view(rdt), fma_out, naive_out, n)
        if np.array_equal(fma_out, ref):
            modes[key] = "fma"
        elif np.array_equal(naive_out, ref):
            modes[key] = "naive"
        else:
            modes[key] = "naive"
    with _lock:
        _modes = modes
    return modes


class CJitLibrary:
    """The bound kernel set: per-dtype multirow / step-5 entry points.

    Attributes are dicts keyed like the generated Python module's lookup
    tables — ``multirow_a[radix]``, ``multirow_b[radix]``, ``step5[nx]``
    — resolved per real dtype via :meth:`kernels`.
    """

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        self._kernels: dict[str, dict[str, dict[int, object]]] = {}
        for suffix, rdt, scalar in (
            ("f", np.float32, ctypes.c_float),
            ("d", np.float64, ctypes.c_double),
        ):
            ptr = np.ctypeslib.ndpointer(rdt, flags="C_CONTIGUOUS")
            mr_a: dict[int, object] = {}
            mr_b: dict[int, object] = {}
            s5: dict[int, object] = {}
            for radix in emit.CODELET_RADICES:
                fa = getattr(lib, f"mr_a_{radix}_{suffix}")
                fa.argtypes = [ptr, ptr, ptr, ptr] + [ctypes.c_long] * 4 + [scalar]
                fa.restype = None
                mr_a[radix] = fa
                fb = getattr(lib, f"mr_b_{radix}_{suffix}")
                fb.argtypes = [ptr, ptr, ptr] + [ctypes.c_long] * 4 + [scalar]
                fb.restype = None
                mr_b[radix] = fb
            for nx in emit.STEP5_SIZES:
                fs = getattr(lib, f"s5_{nx}_{suffix}")
                fs.argtypes = [ptr, ptr, ptr, ctypes.c_long, scalar]
                fs.restype = None
                s5[nx] = fs
            self._kernels[suffix] = {
                "multirow_a": mr_a,
                "multirow_b": mr_b,
                "step5": s5,
            }

    def kernels(self, real_dtype) -> dict[str, dict[int, object]]:
        """The kernel tables for ``real_dtype`` (float32/float64)."""
        suffix = "f" if np.dtype(real_dtype) == np.float32 else "d"
        return self._kernels[suffix]


def load_library() -> CJitLibrary:
    """The process-wide compiled kernel library (built on first use).

    Raises ``RuntimeError`` when no toolchain is available — callers are
    expected to have consulted :func:`available` at backend resolution.
    """
    global _library, _compile_seconds
    with _lock:
        if _library is not None:
            return _library
    import time

    t0 = time.perf_counter()
    modes = cmul_modes()
    lib = _build(emit.c_module(modes["float"], modes["double"]), "kernels")
    built = CJitLibrary(lib)
    wall = time.perf_counter() - t0
    with _lock:
        if _library is None:
            _library = built
            _compile_seconds = wall
    return _library


def last_compile_seconds() -> float:
    """Wall seconds :func:`load_library` spent building (0 before/cached)."""
    with _lock:
        return _compile_seconds
