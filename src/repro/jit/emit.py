"""Codelet/kernel source emitter shared by every compiled backend.

The compiled hot path must agree with the NumPy reference *bitwise*
wherever that is achievable, so instead of hand-writing kernels twice
(once in C for the self-hosted ``cjit`` backend, once in Python for the
``numba`` backend) this module emits both from one description: the exact
butterfly DAG the :mod:`repro.fft.codelets` recursion performs, the exact
pattern-A/B index algebra of :mod:`repro.core.kernels`, and the exact
four-step decomposition of :func:`repro.fft.cooley_tukey.four_step_fft`.

Three kernel families are emitted, one function per radix/size so the
compiler sees straight-line butterflies with no dispatch in the hot loop:

``mr_a_{r}``
    Pattern-A multirow kernel: radix-``r`` FFT down axis 0 of the
    ``(d0, d1, d2, d3, nx)`` state with the four-step twiddle multiply
    fused into the transposing write (:func:`multirow_half1`).
``mr_b_{r}``
    Pattern-B multirow kernel: the second-half radix-``r`` FFT with the
    digit-reversing write (:func:`multirow_half2`).
``s5_{nx}``
    Step-5 kernel: ``nx``-point FFTs along the contiguous last axis,
    decomposed ``nx = r1 * r2`` exactly as ``four_step_fft`` does (or the
    direct 16-point codelet when ``nx == 16``).

All twiddle constants are *runtime arguments* (float-viewed tables from
the shared :data:`~repro.fft.twiddle.DEFAULT_CACHE`), never baked
literals, so one emitted function serves both precisions (Python) or is
emitted once per C scalar type, and the compiled path consumes the very
same table values as the reference.

Inverse transforms reuse the forward tables: the NumPy reference computes
an inverse as ``conj(F(conj(x)))`` with conjugated step twiddles, and
conjugation distributes exactly (sign flips only) through sums, products
and fused multiply-adds — so the emitted kernels take a ``sgn`` scalar
(±1) applied to every imaginary load and store, which is bit-equivalent
to the reference's conjugate sandwich.

Complex-multiply semantics are selectable per emission: NumPy's SIMD
complex product on FMA hardware contracts to ``fma(ar, br, -(ai*bi))`` /
``fma(ar, bi, ai*br)``; the C emitter can reproduce that (``cmul="fma"``)
for bit identity, or use the naive form (``cmul="naive"``) matching the
numba path, which is then only ulp-bounded against the reference (see
DESIGN.md §18 for the policy).
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "CODELET_RADICES",
    "STEP5_SIZES",
    "CTAB8_OFFSET",
    "CTAB16_OFFSET",
    "CTAB_LEN",
    "step5_split",
    "c_module",
    "python_module",
]

#: Codelet radices with emitted straight-line butterflies (the axis-split
#: factors :func:`repro.core.five_step.split_axis` can produce for
#: supported shapes).
CODELET_RADICES = (2, 4, 8, 16)

#: Step-5 line lengths with an emitted kernel.  Larger ``nx`` recurses in
#: the reference implementation and stays on the NumPy path.
STEP5_SIZES = (16, 32, 64, 128, 256)

#: Layout of the packed codelet-constant table (``ctab``) every kernel
#: receives: the radix-8 constant table (4 entries, spelled exactly as
#: :meth:`~repro.fft.twiddle.TwiddleCache.codelet8`) followed by the
#: 16-point half table (8 entries, :meth:`TwiddleCache.half`).
CTAB8_OFFSET = 0
CTAB16_OFFSET = 4
CTAB_LEN = 12


def step5_split(nx: int) -> tuple[int, int]:
    """The ``(r1, r2)`` four-step split the reference uses for ``nx``.

    Mirrors :func:`repro.fft.cooley_tukey.split_radices`: ``r1`` is the
    largest codelet size dividing ``nx``.  ``(nx, 1)`` means the direct
    codelet (no four-step stage).
    """
    if nx not in STEP5_SIZES:
        raise ValueError(f"no emitted step-5 kernel for nx={nx}")
    if nx == 16:
        return (16, 1)
    return (16, nx // 16)


class _Fn:
    """One emitted function: line buffer, temporaries, loop nesting."""

    def __init__(self, lang: str, ctype: str = "float", cmul: str = "naive"):
        if lang not in ("c", "py"):
            raise ValueError(f"unknown emission language {lang!r}")
        if cmul not in ("naive", "fma"):
            raise ValueError(f"unknown cmul mode {cmul!r}")
        self.lang = lang
        self.ctype = ctype
        self.cmul_mode = cmul
        self.lines: list[str] = []
        self.depth = 1
        self._n = 0

    # -- structure ------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def tmp(self, expr: str) -> str:
        name = f"t{self._n}"
        self._n += 1
        if self.lang == "c":
            self.emit(f"const {self.ctype} {name} = {expr};")
        else:
            self.emit(f"{name} = {expr}")
        return name

    @contextmanager
    def loop(self, var: str, bound):
        if self.lang == "c":
            self.emit(f"for (long {var} = 0; {var} < {bound}; {var}++) {{")
        else:
            self.emit(f"for {var} in range({bound}):")
        self.depth += 1
        try:
            yield
        finally:
            self.depth -= 1
            if self.lang == "c":
                self.emit("}")

    def let(self, name: str, expr: str) -> str:
        """Bind an index expression to a (long in C) local."""
        if self.lang == "c":
            self.emit(f"const long {name} = {expr};")
        else:
            self.emit(f"{name} = {expr}")
        return name

    def store(self, target: str, expr: str) -> None:
        if self.lang == "c":
            self.emit(f"{target} = {expr};")
        else:
            self.emit(f"{target} = {expr}")

    # -- arithmetic -----------------------------------------------------

    def cmul(self, ar: str, ai: str, br: str, bi: str) -> tuple[str, str]:
        """``(ar + i*ai) * (br + i*bi)`` with the selected semantics."""
        if self.lang == "c" and self.cmul_mode == "fma":
            f = "fmaf" if self.ctype == "float" else "fma"
            rr = self.tmp(f"{f}({ar}, {br}, -({ai} * {bi}))")
            ri = self.tmp(f"{f}({ar}, {bi}, {ai} * {br})")
        else:
            rr = self.tmp(f"{ar} * {br} - {ai} * {bi}")
            ri = self.tmp(f"{ar} * {bi} + {ai} * {br}")
        return rr, ri

    def ctab_load(self, index: int) -> tuple[str, str]:
        return (self.tmp(f"ctab[{2 * index}]"), self.tmp(f"ctab[{2 * index + 1}]"))

    def fft(self, xs: list[tuple[str, str]]) -> list[tuple[str, str]]:
        """The codelet butterfly DAG, structured exactly like the reference.

        ``xs`` is a list of ``(re, im)`` expression names; the return value
        are the ``(re, im)`` names of the un-normalized forward DFT, with
        the same operation order as :func:`repro.fft.codelets.codelet_fft`.
        """
        n = len(xs)
        if n == 1:
            return xs
        if n == 2:
            (ar, ai), (br, bi) = xs
            return [
                (self.tmp(f"{ar} + {br}"), self.tmp(f"{ai} + {bi}")),
                (self.tmp(f"{ar} - {br}"), self.tmp(f"{ai} - {bi}")),
            ]
        if n == 4:
            (r0, i0), (r1, i1), (r2, i2), (r3, i3) = xs
            tr = self.tmp(f"{r0} + {r2}")
            ti = self.tmp(f"{i0} + {i2}")
            ur = self.tmp(f"{r1} + {r3}")
            ui = self.tmp(f"{i1} + {i3}")
            o0 = (self.tmp(f"{tr} + {ur}"), self.tmp(f"{ti} + {ui}"))
            o2 = (self.tmp(f"{tr} - {ur}"), self.tmp(f"{ti} - {ui}"))
            vr = self.tmp(f"{r0} - {r2}")
            vi = self.tmp(f"{i0} - {i2}")
            wr = self.tmp(f"{r1} - {r3}")
            wi = self.tmp(f"{i1} - {i3}")
            # (vr+i*vi) + (wr+i*wi) * -1j: the -1j rotation is exact.
            o1 = (self.tmp(f"{vr} + {wi}"), self.tmp(f"{vi} - {wr}"))
            o3 = (self.tmp(f"{vr} - {wi}"), self.tmp(f"{vi} + {wr}"))
            return [o0, o1, o2, o3]
        if n not in (8, 16):
            raise ValueError(f"no emitted codelet for radix {n}")
        even = self.fft(xs[0::2])
        odd = self.fft(xs[1::2])
        off = CTAB8_OFFSET if n == 8 else CTAB16_OFFSET
        out: list[tuple[str, str] | None] = [None] * n
        h = n // 2
        for k in range(h):
            er, ei = even[k]
            orr, oi = odd[k]
            wr, wi = self.ctab_load(off + k)
            tr, ti = self.cmul(orr, oi, wr, wi)
            out[k] = (self.tmp(f"{er} + {tr}"), self.tmp(f"{ei} + {ti}"))
            out[k + h] = (self.tmp(f"{er} - {tr}"), self.tmp(f"{ei} - {ti}"))
        return out  # type: ignore[return-value]


def _signature(lang, name, ctype, args):
    if lang == "c":
        return f"void {name}({', '.join(args)}) {{"
    return f"def {name}({', '.join(args)}):"


def _emit_multirow(radix, pattern, lang, ctype="float", cmul="naive"):
    """Source text of one pattern-A or pattern-B multirow kernel."""
    fn = _Fn(lang, ctype, cmul)
    inp = "in" if lang == "c" else "inp"
    fn.let("d23", "d2 * d3")
    fn.let("m", "d23 * nx")
    if pattern == "a":
        fn.let("d0nx", f"{radix} * nx")
    outer = ("q", "d23") if pattern == "a" else ("q2", "d2")
    inner = ("ix", "nx") if pattern == "a" else ("r", "d3nx")
    if pattern == "b":
        fn.let("d3nx", "d3 * nx")
    with fn.loop("i1", "d1"):
        with fn.loop(*outer):
            with fn.loop(*inner):
                if pattern == "a":
                    fn.let("idx", "q * nx + ix")
                else:
                    fn.let("idx", "q2 * d3nx + r")
                xs = []
                for j in range(radix):
                    base = f"2 * (({j} * d1 + i1) * m + idx)"
                    b = fn.let(f"b{j}", base)
                    xs.append(
                        (fn.tmp(f"{inp}[{b}]"), fn.tmp(f"sgn * {inp}[{b} + 1]"))
                    )
                outs = fn.fft(xs)
                for k, (orr, oi) in enumerate(outs):
                    if pattern == "a":
                        o = fn.let(
                            f"o{k}", f"2 * ((i1 * d23 + q) * d0nx + {k} * nx + ix)"
                        )
                        wr = fn.tmp(f"w[2 * ({k} * d1 + i1)]")
                        wi = fn.tmp(f"w[2 * ({k} * d1 + i1) + 1]")
                        rr, ri = fn.cmul(orr, oi, wr, wi)
                        fn.store(f"out[{o}]", rr)
                        fn.store(f"out[{o} + 1]", f"sgn * {ri}")
                    else:
                        o = fn.let(
                            f"o{k}",
                            f"2 * (((i1 * d2 + q2) * {radix} + {k}) * d3nx + r)",
                        )
                        fn.store(f"out[{o}]", orr)
                        fn.store(f"out[{o} + 1]", f"sgn * {oi}")
    name = f"mr_{pattern}_{radix}"
    if lang == "c":
        name += "_f" if ctype == "float" else "_d"
        args = [f"const {ctype}* restrict in", f"{ctype}* restrict out"]
        if pattern == "a":
            args.append(f"const {ctype}* restrict w")
        args += [
            f"const {ctype}* restrict ctab",
            "long d1",
            "long d2",
            "long d3",
            "long nx",
            f"{ctype} sgn",
        ]
        head = [_signature("c", name, ctype, args)]
        if pattern == "b":
            head.append("    (void) ctab;" if radix < 8 else "")
        tail = ["}"]
    else:
        args = ["inp", "out"] + (["w"] if pattern == "a" else []) + [
            "ctab",
            "d1",
            "d2",
            "d3",
            "nx",
            "sgn",
        ]
        half = "first" if pattern == "a" else "second"
        head = [
            _signature("py", name, ctype, args),
            f'    """Pattern-{pattern.upper()} radix-{radix} multirow kernel '
            f'({half} axis half)."""',
        ]
        tail = []
    # Radix 2/4 never touch ctab; silence the unused parameter in C.
    if lang == "c" and pattern == "a" and radix < 8:
        head.append("    (void) ctab;")
    body = [ln for ln in head if ln] + fn.lines + tail
    return name, "\n".join(body)


def _emit_step5(nx, lang, ctype="float", cmul="naive"):
    """Source text of the step-5 kernel for ``nx``-point contiguous lines."""
    r1, r2 = step5_split(nx)
    fn = _Fn(lang, ctype, cmul)
    data = "data"

    def line_at(k):
        return f"line[{2 * k}]", f"line[{2 * k + 1}]"

    with fn.loop("row", "rows"):
        if lang == "c":
            fn.emit(f"{ctype}* restrict line = {data} + row * {2 * nx};")
        else:
            fn.let("line", f"row * {2 * nx}")
        if r2 == 1:
            # Direct 16-point codelet: no four-step stage, no line twiddles.
            xs = []
            for k in range(nx):
                re, im = line_at(k)
                re = re if lang == "c" else f"{data}[line + {2 * k}]"
                im = im if lang == "c" else f"{data}[line + {2 * k + 1}]"
                xs.append((fn.tmp(re), fn.tmp(f"sgn * {im}")))
            outs = fn.fft(xs)
            for k, (orr, oi) in enumerate(outs):
                re, im = line_at(k)
                re = re if lang == "c" else f"{data}[line + {2 * k}]"
                im = im if lang == "c" else f"{data}[line + {2 * k + 1}]"
                fn.store(re, orr)
                fn.store(im, f"sgn * {oi}")
        else:
            # Stage 1: r1 strided r2-point FFTs + four-step twiddle, into
            # the accumulator laid out [k2 * r1 + n1] (matching the
            # reference's intermediate), then stage 2: r2 contiguous
            # r1-point FFTs scattering to the digit-reversed line slots.
            if lang == "c":
                fn.emit(f"{ctype} acc[{2 * nx}];")
            with fn.loop("n1", r1):
                xs = []
                for n2 in range(r2):
                    if lang == "c":
                        b = fn.let(f"b{n2}", f"2 * (n1 + {r1 * n2})")
                        xs.append(
                            (fn.tmp(f"line[{b}]"), fn.tmp(f"sgn * line[{b} + 1]"))
                        )
                    else:
                        b = fn.let(f"b{n2}", f"line + 2 * (n1 + {r1 * n2})")
                        xs.append(
                            (
                                fn.tmp(f"{data}[{b}]"),
                                fn.tmp(f"sgn * {data}[{b} + 1]"),
                            )
                        )
                outs = fn.fft(xs)
                for k2 in range(r2):
                    orr, oi = outs[k2]
                    wr = fn.tmp(f"w[2 * ({k2 * r1} + n1)]")
                    wi = fn.tmp(f"w[2 * ({k2 * r1} + n1) + 1]")
                    rr, ri = fn.cmul(orr, oi, wr, wi)
                    fn.store(f"acc[2 * ({k2 * r1} + n1)]", rr)
                    fn.store(f"acc[2 * ({k2 * r1} + n1) + 1]", ri)
            with fn.loop("k2", r2):
                xs = []
                for n1 in range(r1):
                    xs.append(
                        (
                            fn.tmp(f"acc[2 * (k2 * {r1} + {n1})]"),
                            fn.tmp(f"acc[2 * (k2 * {r1} + {n1}) + 1]"),
                        )
                    )
                outs = fn.fft(xs)
                for k1, (orr, oi) in enumerate(outs):
                    if lang == "c":
                        tgt = f"line[2 * (k2 + {r2 * k1})]"
                        tgt1 = f"line[2 * (k2 + {r2 * k1}) + 1]"
                    else:
                        tgt = f"{data}[line + 2 * (k2 + {r2 * k1})]"
                        tgt1 = f"{data}[line + 2 * (k2 + {r2 * k1}) + 1]"
                    fn.store(tgt, orr)
                    fn.store(tgt1, f"sgn * {oi}")
    name = f"s5_{nx}"
    if lang == "c":
        name += "_f" if ctype == "float" else "_d"
        args = [
            f"{ctype}* restrict data",
            f"const {ctype}* restrict w",
            f"const {ctype}* restrict ctab",
            "long rows",
            f"{ctype} sgn",
        ]
        head = [_signature("c", name, ctype, args)]
        if r2 == 1:
            head.append("    (void) w;")
        tail = ["}"]
    else:
        args = ["data", "w", "ctab", "acc", "rows", "sgn"]
        head = [
            _signature("py", name, ctype, args),
            f'    """Step-5 kernel: {nx}-point FFTs '
            f"({r1} x {r2} four-step) along contiguous lines.\"\"\"",
        ]
        tail = []
    return name, "\n".join(head + fn.lines + tail)


_C_PRELUDE = """\
/* Auto-generated by repro.jit.emit -- the compiled five-step hot path.
 * One function per radix/size; all twiddle tables are runtime arguments
 * taken from the same cache as the NumPy reference.  Complex multiplies
 * use {cmul_f}/{cmul_d} semantics (probed against this NumPy build).
 * Compile with -ffp-contract=off: contraction is explicit where wanted.
 */
#include <math.h>
"""


def c_module(cmul_float: str = "fma", cmul_double: str = "fma") -> str:
    """The complete C translation unit for the ``cjit`` backend.

    ``cmul_float`` / ``cmul_double`` select the complex-multiply form per
    scalar type (``"fma"`` or ``"naive"``), normally the output of the
    runtime probe against the running NumPy build.
    """
    parts = [_C_PRELUDE.format(cmul_f=cmul_float, cmul_d=cmul_double)]
    for ctype, mode in (("float", cmul_float), ("double", cmul_double)):
        for radix in CODELET_RADICES:
            parts.append(_emit_multirow(radix, "a", "c", ctype, mode)[1])
            parts.append(_emit_multirow(radix, "b", "c", ctype, mode)[1])
        for nx in STEP5_SIZES:
            parts.append(_emit_step5(nx, "c", ctype, mode)[1])
    return "\n\n".join(parts) + "\n"


_PY_PRELUDE = '''\
"""Auto-generated five-step loop kernels (the numba backend's source).

Generated by :mod:`repro.jit.emit` (``python -m repro.jit.emit`` rewrites
this file); a unit test asserts the checked-in text matches the emitter,
so the C and Python kernels can never drift apart.  The functions run
under ``@njit(cache=True, nogil=True)`` when numba is available and as
plain Python (on tiny grids, in tests) when it is not: all arithmetic is
on array scalars, so pure-Python execution preserves float32/float64
semantics exactly.

Arguments are flat real-viewed arrays (``complex`` seen as ``[re, im]``
pairs): ``inp``/``out``/``data`` the state, ``w`` the four-step twiddle
table, ``ctab`` the packed codelet-constant table
(:data:`repro.jit.emit.CTAB8_OFFSET` / :data:`~repro.jit.emit.CTAB16_OFFSET`),
``acc`` a per-call scratch line, and ``sgn`` (±1, same dtype as the data)
the conjugation sign for inverse transforms.  Complex multiplies are the
naive form, so results are ulp-bounded against NumPy (DESIGN.md §18).
"""

# ruff: noqa: E501
'''


def python_module() -> str:
    """The complete generated Python module (``repro.jit.loops``) text."""
    parts = [_PY_PRELUDE]
    mr_a, mr_b, s5 = [], [], []
    for radix in CODELET_RADICES:
        name_a, src_a = _emit_multirow(radix, "a", "py")
        name_b, src_b = _emit_multirow(radix, "b", "py")
        mr_a.append((radix, name_a))
        mr_b.append((radix, name_b))
        parts += [src_a, "", src_b, ""]
    for nx in STEP5_SIZES:
        name, src = _emit_step5(nx, "py")
        s5.append((nx, name))
        parts += [src, ""]
    parts.append(
        "#: Kernel lookup tables used by the backend orchestration."
    )
    parts.append(
        "MULTIROW_A = {" + ", ".join(f"{r}: {n}" for r, n in mr_a) + "}"
    )
    parts.append(
        "MULTIROW_B = {" + ", ".join(f"{r}: {n}" for r, n in mr_b) + "}"
    )
    parts.append("STEP5 = {" + ", ".join(f"{n}: {f}" for n, f in s5) + "}")
    parts.append("")
    parts.append(
        "KERNEL_NAMES = ("
        + ", ".join(f'"{n}"' for _, n in mr_a + mr_b + s5)
        + ")"
    )
    return "\n".join(parts) + "\n"


def _main() -> None:
    """Rewrite ``repro/jit/loops.py`` from the emitter (dev tool)."""
    from pathlib import Path

    target = Path(__file__).resolve().parent / "loops.py"
    target.write_text(python_module())
    print(f"wrote {target}")


if __name__ == "__main__":
    _main()
