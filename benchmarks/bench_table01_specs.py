"""Regenerate Table 1 (GPU specifications) from the device model."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_table1(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table1"))
    show("Table 1: specifications of NVIDIA GeForce 8 series GPUs", result.text)
    # Derived peaks must reproduce the printed columns.
    assert result.rows["8800 GTX"]["gflops"] == pytest.approx(345.6, abs=1.0)
    assert result.rows["8800 GTX"]["bandwidth"] == pytest.approx(86.4, abs=0.1)
    assert result.rows["8800 GT"]["bandwidth"] == pytest.approx(57.6, abs=0.1)
    assert result.rows["8800 GTS"]["gflops"] == pytest.approx(416.0, abs=1.0)
