"""Application bench: a DNS time step's FFT bill (the paper's HPC case).

Runs real pseudo-spectral Navier-Stokes steps (functional, measured by
pytest-benchmark) and prices the same FFT bundle at production scale on
the simulated cards — connecting the application layer to the paper's
per-transform numbers.
"""

import numpy as np

from repro.apps.spectral import SpectralNavierStokes, taylor_green_field
from repro.core.estimator import estimate_fft3d
from repro.gpu.specs import ALL_GPUS
from repro.util.tables import Table


def test_dns_step_functional(benchmark, show):
    ns = SpectralNavierStokes(32, viscosity=1e-2)
    ns.set_velocity(taylor_green_field(32))

    def step():
        ns.step(1e-3)
        return ns.diagnostics()

    diag = benchmark(step)
    assert np.isfinite(diag.kinetic_energy)
    assert diag.max_divergence < 1e-9

    ffts_per_step = 18  # 2 RHS evaluations x 9 transforms
    t = Table(
        ["Model", "per 256^3 FFT (ms)", "per DNS step (ms)", "steps/hour"],
        title="Projected DNS step cost at 256^3 (18 FFTs/step)",
    )
    rows = {}
    for dev in ALL_GPUS:
        per_fft = estimate_fft3d(dev, 256).on_board_seconds
        per_step = ffts_per_step * per_fft
        rows[dev.name] = per_step
        t.add_row([dev.name, f"{per_fft * 1e3:.1f}", f"{per_step * 1e3:.0f}",
                   f"{3600 / per_step:.0f}"])
    show("DNS workload projection", t.render())

    # A 256^3 DNS step stays sub-second on every card — the capability
    # claim behind the paper's turbulence motivation.
    assert all(s < 1.0 for s in rows.values())
