"""Ablation: two 16-point passes vs one direct 256-point multirow pass.

Section 3.1's central tradeoff: "compared with direct 256-point FFT, the
number of memory access doubles with 16-point FFTs.  But the overall
performance with 16-point FFTs turns out to be better" — because 1024
registers per thread leave only 8 resident threads and the memory system
starves ("we have observed more than 38 GBytes/s of effective memory
bandwidth while for the 256-point FFT we observe less than 10 GBytes/s").
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.five_step import FiveStepPlan
from repro.core.patterns import FiveDimView
from repro.gpu.access import BurstPattern
from repro.gpu.isa import InstructionMix
from repro.gpu.kernel import KernelSpec, MemoryAccessSpec
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import GEFORCE_8800_GTX
from repro.gpu.timing import time_kernel
from repro.util.tables import Table


def direct_256pt_spec(device):
    """One coarse-grained 256-point-per-thread pass along Z at 256^3."""
    n = 256
    # Scans sweep x-chunks then the Y digits; each thread bursts a whole
    # Z line (256 elements, 512 KB apart).
    read = BurstPattern(0, (16, 16, 16, 16), (128, 2048, 32768, 524288),
                        256, 524288, 128)
    write = BurstPattern(n**3 * 8, (16, 16, 16, 16),
                         (128, 2048, 32768, 524288), 256, 524288, 128)
    return KernelSpec(
        name="direct-256pt-z",
        grid_blocks=3 * device.n_sm,
        threads_per_block=64,
        regs_per_thread=1024,  # "more than 512 + registers ... 1024"
        shared_bytes_per_block=0,
        work_items=n**3 // 256,
        mix=InstructionMix(flops=5.0 * 256 * 8, other_ops=2.0 * 256),
        memory=(MemoryAccessSpec(read), MemoryAccessSpec(write)),
    )


def run():
    device = GEFORCE_8800_GTX
    ms = MemorySystem(device)
    plan = FiveStepPlan((256, 256, 256))
    specs = plan.step_specs(device)
    two_pass = sum(
        time_kernel(device, s, ms).seconds for s in specs[:2]
    )  # steps 1+2 complete the Z transform
    direct = time_kernel(device, direct_256pt_spec(device), ms)
    two_pass_bw = 2 * 2 * 256**3 * 8 / two_pass / 1e9
    direct_bw = 2 * 256**3 * 8 / direct.seconds / 1e9
    return dict(
        two_pass_s=two_pass,
        direct_s=direct.seconds,
        two_pass_bw=two_pass_bw,
        direct_bw=direct_bw,
    )


def test_radix_ablation(benchmark, show):
    r = run_once(benchmark, run)
    t = Table(["Variant", "Z-transform time (ms)", "Effective GB/s"],
              title="Ablation: 16-point two-pass vs direct 256-point (GTX)")
    t.add_row(["2 x 16-point passes (paper)", f"{r['two_pass_s'] * 1e3:.2f}",
               f"{r['two_pass_bw']:.1f}"])
    t.add_row(["1 x direct 256-point pass", f"{r['direct_s'] * 1e3:.2f}",
               f"{r['direct_bw']:.1f}"])
    show("Radix decomposition ablation", t.render())
    # Despite moving 2x the data, the two-pass variant wins outright.
    assert r["two_pass_s"] < r["direct_s"]
    # The starved direct kernel runs at the paper's "<10 GB/s" order.
    assert r["direct_bw"] < 15.0
    # The 16-point passes sustain the paper's ">38 GB/s" class bandwidth.
    assert r["two_pass_bw"] > 38.0
