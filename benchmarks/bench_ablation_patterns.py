"""Ablation: the five-step pattern ordering vs a naive write ordering.

"The transposes are performed in the order so as to optimize the memory
access patterns to maximize the memory bandwidth" (Section 3.1).  This
bench re-targets the step writes at the C/D positions instead of A/B and
measures what that ordering costs.
"""

from benchmarks.conftest import run_once
from repro.core.kernels import multirow_step_spec
from repro.core.patterns import FiveDimView
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import GEFORCE_8800_GTX
from repro.gpu.timing import time_kernel
from repro.util.tables import Table


def run():
    device = GEFORCE_8800_GTX
    ms = MemorySystem(device)
    view = FiveDimView((256, 16, 16, 16, 16))
    out = FiveDimView((256, 16, 16, 16, 16))
    times = {}
    for star_out, label in ((2, "write A (paper)"), (3, "write B (paper)"),
                            (4, "write C (naive)"), (5, "write D (naive)")):
        spec = multirow_step_spec(
            device, view, out, star_out, 0, view.total_bytes, False,
            f"step-writes-{label}",
        )
        times[label] = time_kernel(device, spec, ms).seconds
    return times


def test_pattern_ordering_ablation(benchmark, show):
    times = run_once(benchmark, run)
    t = Table(["Write pattern", "Step time (ms)", "GB/s"],
              title="Ablation: step write-pattern choice (D reads, GTX)")
    total = 2 * 256**3 * 8
    for label, s in times.items():
        t.add_row([label, f"{s * 1e3:.2f}", f"{total / s / 1e9:.1f}"])
    show("Pattern-ordering ablation", t.render())
    best_paper = min(times["write A (paper)"], times["write B (paper)"])
    worst_naive = max(times["write C (naive)"], times["write D (naive)"])
    # The paper's ordering buys a significant margin on every step.
    assert worst_naive > 1.15 * best_paper
    assert times["write D (naive)"] > times["write A (paper)"]
