"""Shared benchmark helpers.

Every table/figure benchmark runs its experiment once under
``benchmark.pedantic`` (the models are deterministic; statistical rounds
would only re-measure Python overhead), prints the regenerated table next
to the paper's values, and asserts the reproduction's *shape* criteria.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print a payload under a visible header (survives -s)."""

    def _show(title: str, text: str) -> None:
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)
        print(text)

    return _show
