"""Shared benchmark helpers.

Every table/figure benchmark runs its experiment once under
``benchmark.pedantic`` (the models are deterministic; statistical rounds
would only re-measure Python overhead), prints the regenerated table next
to the paper's values, and asserts the reproduction's *shape* criteria.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist a benchmark's results as machine-readable JSON.

    Writes ``BENCH_<name>.json`` into ``$REPRO_BENCH_DIR`` (default: the
    repository root) so CI can diff benchmark outputs across runs without
    scraping pytest stdout.  Returns the path written.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", Path(__file__).parent.parent))
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def show():
    """Print a payload under a visible header (survives -s)."""

    def _show(title: str, text: str) -> None:
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)
        print(text)

    return _show
