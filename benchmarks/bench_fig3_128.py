"""Regenerate Figure 3: 128^3 performance across algorithms and cards."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig3(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("fig3"))
    show("Figure 3: 3-D FFT of size 128^3 (GFLOPS)", result.text)
    for name, row in result.rows.items():
        assert row["ours"] > 2.5 * row["cufft"], name
        assert row["ours"] > 1.5 * row["conventional"], name
    # 128^3 sits between the 64^3 and 256^3 rates.
    fig1 = run_experiment("fig1")
    fig2 = run_experiment("fig2")
    for name in result.rows:
        assert (
            fig2.rows[name]["ours"]
            < result.rows[name]["ours"]
            < fig1.rows[name]["ours"]
        )
