"""Pipelined batch execution vs back-to-back single transforms.

The stream model's acceptance experiment: run B same-shape cubes through
``BatchedGpuFFT3D`` (H2D of entry i+1 overlapping the kernels of entry i
overlapping the D2H of entry i-1) and through B sequential
``GpuFFT3D.execute`` calls, on identical simulated hardware.  The batch
must be at least 1.3x faster in simulated time, bit-correct per entry,
and the second plan request for the same ``(shape, precision, device)``
must be served from the plan cache without recomputing twiddles.

Results are also emitted as ``BENCH_batch.json`` for CI consumption.
"""

import numpy as np

from benchmarks.conftest import run_once, write_bench_json
from repro.core.api import GpuFFT3D
from repro.core.batch import BatchedGpuFFT3D
from repro.core.plan_cache import PLAN_CACHE
from repro.fft.twiddle import DEFAULT_CACHE

N = 32
BATCH = 8
SPEEDUP_BAR = 1.3


def _batch_input():
    rng = np.random.default_rng(20080819)
    return (
        rng.standard_normal((BATCH, N, N, N))
        + 1j * rng.standard_normal((BATCH, N, N, N))
    ).astype(np.complex64)


def test_batch_pipeline_speedup(benchmark, show):
    """B pipelined transforms vs B sequential executes, plus cache reuse."""
    xs = _batch_input()
    refs = np.stack([np.fft.fftn(x.astype(np.complex128)) for x in xs])

    def run():
        # Sequential baseline: one plan, B blocking round-trips.
        with GpuFFT3D((N, N, N)) as plan:
            seq_outs = np.stack([plan.execute(x) for x in xs])
            seq_s = plan.simulator.elapsed

        # Pipelined: same B cubes through the stream engine.
        cache_before = PLAN_CACHE.stats
        twiddles_before = len(DEFAULT_CACHE)
        with BatchedGpuFFT3D((N, N, N)) as engine:
            pipe_outs = engine.execute(xs)
            pipe_s = engine.simulator.elapsed
            busy = engine.pipeline_report()
        cache_after = PLAN_CACHE.stats
        return seq_outs, seq_s, pipe_outs, pipe_s, busy, (
            cache_after.hits - cache_before.hits,
            len(DEFAULT_CACHE) - twiddles_before,
        )

    seq_outs, seq_s, pipe_outs, pipe_s, busy, (cache_hits, new_twiddles) = (
        run_once(benchmark, run)
    )

    scale = np.abs(refs).max()
    seq_err = np.abs(seq_outs - refs).max() / scale
    pipe_err = np.abs(pipe_outs - refs).max() / scale
    speedup = seq_s / pipe_s

    payload = {
        "n": N,
        "batch": BATCH,
        "sequential_seconds": seq_s,
        "pipelined_seconds": pipe_s,
        "speedup": speedup,
        "speedup_bar": SPEEDUP_BAR,
        "engine_busy_seconds": busy,
        "max_rel_error_sequential": float(seq_err),
        "max_rel_error_pipelined": float(pipe_err),
        "plan_cache_hits_for_batch_plan": cache_hits,
        "new_twiddle_tables_for_batch_plan": new_twiddles,
    }
    path = write_bench_json("batch", payload)

    show(
        f"Batch pipeline: {BATCH} x {N}^3 transforms",
        f"sequential: {seq_s * 1e3:8.3f} ms  (err {seq_err:.2e})\n"
        f"pipelined:  {pipe_s * 1e3:8.3f} ms  (err {pipe_err:.2e})\n"
        f"speedup:    {speedup:8.3f}x (acceptance bar: >= {SPEEDUP_BAR}x)\n"
        f"engine busy: "
        + ", ".join(f"{k} {v * 1e3:.3f} ms" for k, v in busy.items())
        + f"\nplan cache: +{cache_hits} hit(s), "
        f"+{new_twiddles} twiddle tables (expected 0)\n"
        f"json: {path}",
    )

    assert seq_err < 1e-5 and pipe_err < 1e-5
    assert speedup >= SPEEDUP_BAR
    # The sequential plan above already populated the cache for this key:
    # the batch engine's plan request must be a hit, and building it must
    # not have recomputed any twiddle tables.
    assert cache_hits >= 1
    assert new_twiddles == 0
