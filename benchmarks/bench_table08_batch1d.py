"""Regenerate Table 8: 65536 sets of 256-point 1-D FFTs, ours vs CUFFT."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table8(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table8"))
    show("Table 8: batched 1-D transforms (step 5 vs CUFFT1D)", result.text)
    for name, row in result.rows.items():
        paper = paper_data.TABLE8[name]
        assert row["ours_ms"] == pytest.approx(paper["ours"][0], rel=0.10), name
        assert row["cufft_ms"] == pytest.approx(paper["cufft"][0], rel=0.10), name
        # "our FFT greatly outperforms CUFFT" — better than 2x.
        assert row["ours_gflops"] > 2.0 * row["cufft_gflops"], name
    # Section 4.2: ours sustains far below peak but CUFFT far lower still.
    assert result.rows["8800 GTS"]["ours_gflops"] == pytest.approx(130, rel=0.1)
