"""Regenerate Table 12: the 512^3 out-of-core transform."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table12(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table12"))
    show("Table 12: 512^3 out-of-core, per phase (seconds)", result.text)
    for name in ("8800 GT", "8800 GTS", "8800 GTX"):
        row = result.rows[name]
        paper = paper_data.TABLE12[name]
        assert row["total_s"] == pytest.approx(paper["total"], rel=0.10), name
        assert row["gflops"] == pytest.approx(paper["gflops"], rel=0.10), name
        # "data transfer occupies a large part of elapsed time".
        assert row["transfer_s"] > 0.5 * row["total_s"], name
    # Section 4.6: still up to ~50% faster than FFTW despite the PCIe tax.
    assert result.rows["8800 GTS"]["total_s"] < result.rows["FFTW"]["total_s"]
    assert result.rows["8800 GT"]["total_s"] < result.rows["FFTW"]["total_s"]
