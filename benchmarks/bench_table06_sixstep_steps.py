"""Regenerate Table 6: per-step times of the conventional six-step FFT."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table6(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table6"))
    show("Table 6: conventional algorithm with transposes, 256^3", result.text)
    for name, row in result.rows.items():
        paper = paper_data.TABLE6[name]
        # FFT steps match closely; transposes within the model's envelope.
        assert row["fft_ms"] == pytest.approx(paper["fft"][0], rel=0.15), name
        assert row["transpose_ms"] == pytest.approx(
            paper["transpose"][0], rel=0.35
        ), name
        # Transposes are the bottleneck everywhere.
        assert row["transpose_ms"] > row["fft_ms"], name
    # GT transposes run at the many-stream floor (paper: 20.7 GB/s).
    assert result.rows["8800 GT"]["transpose_gbs"] == pytest.approx(20.7, rel=0.2)
