"""Shared wall-clock harness: best-of-N with interleaved configurations.

Both host-path benchmarks (``bench_hostpath.py`` and ``bench_jit.py``)
measure competing configurations of the same workload on a possibly
noisy shared box.  They share this harness so their numbers are
comparable by construction:

* **interleaving** — the timed rounds alternate between configurations
  (A, B, C, A, B, C, ...) instead of running each back-to-back, so a
  transient stretch of CPU steal lands on at most one round of each
  configuration rather than corrupting one configuration wholesale;
* **best-of-N** — each configuration keeps its fastest round, which
  discards the interference instead of averaging it in;
* **interpreter/backend split** — one definition of where the time
  goes: ``backend`` is the numeric core (a plan/kernel ``execute``
  call), ``total`` the full engine entry point around it, and the
  difference is interpreter-side dispatch (views, bookkeeping, the
  simulator).  A JIT backend can only shrink the backend share, so the
  split is what makes a "3x faster core" claim auditable next to an
  engine-level wall-clock that also contains fixed dispatch cost.
"""

from __future__ import annotations

import gc
import time
from typing import Callable

__all__ = ["sample_seconds", "best_of_interleaved", "time_split"]


def sample_seconds(fn: Callable[[], None], reps: int = 1) -> float:
    """Mean wall seconds of ``reps`` back-to-back calls of ``fn``.

    One GC sweep runs before the timed block so a previous sample's
    garbage is not charged to this one.
    """
    gc.collect()
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


def best_of_interleaved(
    samplers: dict[str, Callable[[], None]],
    rounds: int,
    reps: int = 1,
    warmup: bool = True,
) -> dict[str, float]:
    """Best-of-``rounds`` sample per configuration, rounds interleaved.

    ``samplers`` maps configuration name to a zero-argument callable
    performing one unit of work; every configuration is sampled once per
    round in dict order.  ``warmup`` runs each callable once untimed
    first (populating arenas, plan caches and JIT kernels — steady state
    is what these benchmarks measure).
    """
    if warmup:
        for fn in samplers.values():
            fn()
    best: dict[str, float] = {}
    for _ in range(rounds):
        for name, fn in samplers.items():
            s = sample_seconds(fn, reps)
            best[name] = min(best.get(name, s), s)
    return best


def time_split(
    total_fn: Callable[[], None],
    backend_fn: Callable[[], None],
    rounds: int = 4,
    reps: int = 4,
) -> dict:
    """Interpreter-vs-backend decomposition of one configuration.

    ``total_fn`` is the engine-level entry point (e.g. a transform
    through :class:`~repro.core.api.GpuFFT3D`), ``backend_fn`` the bare
    numeric core it wraps (the plan or compiled-kernel execute).  Both
    are measured with the same interleaved best-of-N discipline, so the
    reported split is internally consistent: ``interpreter_ms`` is the
    dispatch cost the backend can never remove.
    """
    best = best_of_interleaved(
        {"total": total_fn, "backend": backend_fn}, rounds, reps
    )
    total, backend = best["total"], best["backend"]
    interp = max(0.0, total - backend)
    return {
        "total_ms": total * 1e3,
        "backend_ms": backend * 1e3,
        "interpreter_ms": interp * 1e3,
        "interpreter_fraction": interp / total if total else 0.0,
    }
