"""Regenerate Table 13: whole-system power and GFLOPS/W."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table13(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table13"))
    show("Table 13: system power while repeating 256^3 FFTs", result.text)
    cpu_eff = result.rows["CPU"]["gflops_per_watt"]
    assert cpu_eff == pytest.approx(
        paper_data.TABLE13["CPU (RIVA128)"]["eff"], rel=0.1
    )
    # Section 4.7: GPUs ~4x the CPU's GFLOPS/W.
    for name in ("8800 GT", "8800 GTS", "8800 GTX"):
        eff = result.rows[name]["gflops_per_watt"]
        assert 3.0 < eff / cpu_eff < 6.0, name
        assert eff == pytest.approx(paper_data.TABLE13[name]["eff"], rel=0.15)
