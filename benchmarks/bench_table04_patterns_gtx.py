"""Regenerate Table 4: pattern-pair bandwidth on the 8800 GTX."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table4(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table4"))
    show("Table 4: achieved bandwidth per access-pattern pair, 8800 GTX",
         result.text)
    rows = result.rows
    # Pairs touching A or B approach the 71.7 GB/s single-stream copy.
    for pair in ("AA", "AB", "BA", "BB", "CA", "CB", "DA", "DB", "AC", "AD"):
        assert rows[pair] > 60.0, pair
    # Pure C/D pairs collapse toward ~44-51 GB/s.
    for pair in ("CC", "CD", "DC", "DD"):
        assert rows[pair] < 56.0, pair
    assert rows["CC"] == pytest.approx(paper_data.TABLE4_GTX["C"][2], rel=0.10)
    assert rows["AA"] == pytest.approx(paper_data.TABLE4_GTX["A"][0], rel=0.05)
    # The five-step algorithm's pairs (D reads, A/B writes) stay fast.
    assert rows["DA"] > 0.9 * rows["AA"]
    assert rows["DB"] > 0.9 * rows["AA"]
