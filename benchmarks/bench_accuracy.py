"""Numerical-accuracy bench: the Section 4.5 precision question.

Measures forward and round-trip error of the five-step transform in both
precisions across sizes (the paper could only run single precision; the
double column is its stated future work).
"""

from benchmarks.conftest import run_once
from repro.core.accuracy import accuracy_sweep
from repro.util.tables import Table


def test_accuracy_sweep(benchmark, show):
    reports = run_once(
        benchmark,
        lambda: accuracy_sweep(sizes=(16, 32, 64), engines=("five_step",),
                               precisions=("single", "double")),
    )
    t = Table(["Size", "Precision", "Forward rel. error", "Roundtrip error"],
              title="Five-step transform accuracy vs float64 reference")
    for r in reports:
        t.add_row([f"{r.shape[0]}^3", r.precision,
                   f"{r.forward_error:.2e}", f"{r.roundtrip_error:.2e}"])
    show("Accuracy sweep (Section 4.5)", t.render())

    singles = [r for r in reports if r.precision == "single"]
    doubles = [r for r in reports if r.precision == "double"]
    for r in singles:
        assert r.forward_error < 1e-5
        assert r.within_single_precision_budget()
    for r in doubles:
        assert r.forward_error < 1e-12
    # Double precision buys ~7 orders of magnitude.
    for s, d in zip(singles, doubles):
        assert s.forward_error > 1e4 * d.forward_error
