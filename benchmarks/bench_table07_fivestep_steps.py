"""Regenerate Table 7: per-step times of the bandwidth-intensive kernel."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table7(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table7"))
    show("Table 7: our bandwidth-intensive kernel, 256^3", result.text)
    for name, row in result.rows.items():
        paper = paper_data.TABLE7[name]
        assert row["step13_ms"] == pytest.approx(paper["step13"][0], rel=0.15), name
        assert row["step24_ms"] == pytest.approx(paper["step24"][0], rel=0.15), name
        assert row["step5_ms"] == pytest.approx(paper["step5"][0], rel=0.15), name
    # GTX dominates the memory-bound steps 1-4...
    assert (
        result.rows["8800 GTX"]["step13_ms"]
        < result.rows["8800 GTS"]["step13_ms"]
        < result.rows["8800 GT"]["step13_ms"]
    )
    # ...but the GTS wins the compute-sensitive step 5 (Section 4.1).
    assert result.rows["8800 GTS"]["step5_ms"] < result.rows["8800 GTX"]["step5_ms"]
