"""Observability overhead: tracing a batched run must cost < 5% wall time.

The acceptance experiment for :mod:`repro.obs`: run the canonical
8 x 32^3 batched workload twice — bare, and with a
:class:`~repro.obs.profiler.Profiler` capturing every simulator event —
and demand that

* the simulated results are **bit-identical** (tracing is a read-only
  projection of the timeline, never a participant);
* the host wall-clock overhead of capture (min over several repeats, so
  scheduler noise cancels) stays under 5%;
* the trace accounts for every event and every byte the simulator moved,
  and its per-engine busy totals match
  :meth:`DeviceSimulator.engine_busy_seconds` to 1e-9.

Results are emitted as ``BENCH_trace.json`` for CI consumption.
"""

import math
import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_json
from repro.core.batch import BatchedGpuFFT3D
from repro.obs.profiler import Profiler

N = 32
BATCH = 8
REPEATS = 9
OVERHEAD_BAR_PCT = 5.0


def _batch_input():
    rng = np.random.default_rng(20080819)
    return (
        rng.standard_normal((BATCH, N, N, N))
        + 1j * rng.standard_normal((BATCH, N, N, N))
    ).astype(np.complex64)


def _run_workload(xs, profiler=None):
    """One batched forward pass; returns (output, simulated seconds)."""
    with BatchedGpuFFT3D(
        (N, N, N), n_streams=3, profiler=profiler, name="obsbench"
    ) as plan:
        out = plan.forward(xs)
        return out, plan.simulator.elapsed


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _min_wall_seconds(bare_fn, traced_fn, repeats=REPEATS):
    """Best-of-``repeats`` wall time of each workload, interleaved.

    Alternating bare/traced measurements (after one warm-up each) makes
    slow drift of the host — frequency scaling, cache state, a noisy
    neighbour — hit both variants equally instead of biasing whichever
    ran second; the min then discards the remaining one-sided spikes.
    """
    bare_fn()
    traced_fn()
    bare = traced = math.inf
    for _ in range(repeats):
        bare = min(bare, _timed(bare_fn))
        traced = min(traced, _timed(traced_fn))
    return bare, traced


def test_observability_overhead(benchmark, show):
    """Tracing on vs off: identical results, bounded capture cost."""
    xs = _batch_input()

    def run():
        bare_out, bare_sim_s = _run_workload(xs)
        prof = Profiler()
        traced_out, traced_sim_s = _run_workload(xs, profiler=prof)
        snap = prof.snapshot()  # refresh gauges while sims are attached
        prof.close()

        def bare_once():
            _run_workload(xs)

        def traced_once():
            with Profiler() as p:
                _run_workload(xs, profiler=p)

        bare_wall, traced_wall = _min_wall_seconds(bare_once, traced_once)
        return bare_out, bare_sim_s, traced_out, traced_sim_s, prof, snap, (
            bare_wall,
            traced_wall,
        )

    bare_out, bare_sim_s, traced_out, traced_sim_s, prof, snap, (
        bare_wall,
        traced_wall,
    ) = run_once(benchmark, run)

    overhead_pct = 100.0 * (traced_wall - bare_wall) / bare_wall

    spans = prof.tracer.spans()
    grid_bytes = N**3 * 8  # complex64
    expected_bytes = BATCH * grid_bytes  # per direction
    h2d_bytes = snap["counters"]["sim.h2d.bytes"]["value"]
    d2h_bytes = snap["counters"]["sim.d2h.bytes"]["value"]
    busy_err = max(
        abs(prof.tracer.engine_busy_seconds()[e] - b)
        for e, b in zip(
            ("h2d", "compute", "d2h"),
            (
                snap["gauges"]["sim.engine.busy.seconds{engine=h2d,sim=0}"][
                    "value"
                ],
                snap["gauges"][
                    "sim.engine.busy.seconds{engine=compute,sim=0}"
                ]["value"],
                snap["gauges"]["sim.engine.busy.seconds{engine=d2h,sim=0}"][
                    "value"
                ],
            ),
        )
    )

    payload = {
        "n": N,
        "batch": BATCH,
        "repeats": REPEATS,
        "bare_wall_seconds": bare_wall,
        "traced_wall_seconds": traced_wall,
        "overhead_pct": overhead_pct,
        "overhead_bar_pct": OVERHEAD_BAR_PCT,
        "simulated_seconds": traced_sim_s,
        "events_captured": len(spans),
        "trace_events_exported": len(prof.chrome_trace()["traceEvents"]),
        "h2d_bytes_accounted": h2d_bytes,
        "d2h_bytes_accounted": d2h_bytes,
        "expected_bytes_per_direction": expected_bytes,
        "engine_busy_max_abs_error": busy_err,
        "results_bit_identical": bool(np.array_equal(bare_out, traced_out)),
    }
    path = write_bench_json("trace", payload)

    show(
        f"Observability overhead: {BATCH} x {N}^3 batched, tracing on vs off",
        f"bare wall:   {bare_wall * 1e3:8.3f} ms (min of {REPEATS})\n"
        f"traced wall: {traced_wall * 1e3:8.3f} ms\n"
        f"overhead:    {overhead_pct:8.3f} % (bar: < {OVERHEAD_BAR_PCT} %)\n"
        f"captured:    {len(spans)} spans, "
        f"{h2d_bytes / 1e6:.1f} MB up / {d2h_bytes / 1e6:.1f} MB down\n"
        f"busy error:  {busy_err:.2e} s\njson: {path}",
    )

    assert np.array_equal(bare_out, traced_out)
    assert bare_sim_s == traced_sim_s
    assert overhead_pct < OVERHEAD_BAR_PCT
    assert len(spans) == BATCH * 7  # h2d + 5 kernel steps + d2h per entry
    assert h2d_bytes == expected_bytes
    assert d2h_bytes == expected_bytes
    assert busy_err < 1e-9
