"""Ablations: double buffering inside kernels and async PCIe overlap.

Two overlap mechanisms the paper leans on or proposes:

* within a kernel, "CUDA kernels including FFT usually consist of two
  phases for latency hiding" — double buffering overlaps the memory and
  compute phases (Section 3);
* across the PCIe bus, "the latest devices support asynchronous
  transfers, which enable overlap between data transfer and computation"
  (Section 4.4, the paper's proposed mitigation).
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.core.estimator import estimate_fft3d
from repro.core.five_step import FiveStepPlan
from repro.gpu.memsystem import MemorySystem
from repro.gpu.pcie import link_for
from repro.gpu.specs import GEFORCE_8800_GTS, GEFORCE_8800_GTX
from repro.gpu.timing import time_kernel
from repro.util.tables import Table


def run():
    device = GEFORCE_8800_GTX
    ms = MemorySystem(device)
    plan = FiveStepPlan((256, 256, 256))
    db, nodb = 0.0, 0.0
    for spec in plan.step_specs(device):
        db += time_kernel(device, spec, ms).seconds
        nodb += time_kernel(
            device, replace(spec, double_buffered=False), ms
        ).seconds

    est = estimate_fft3d(GEFORCE_8800_GTS, 256)
    link = link_for(GEFORCE_8800_GTS.pcie)
    sync = est.total_seconds
    # Pipeline H2D against compute (slab-wise), keep D2H serialized.
    overlapped = (
        link.overlapped_time(est.h2d_seconds, est.on_board_seconds)
        + est.d2h_seconds
    )
    return dict(db=db, nodb=nodb, sync=sync, overlapped=overlapped)


def test_overlap_ablations(benchmark, show):
    r = run_once(benchmark, run)
    t = Table(["Mechanism", "Off (ms)", "On (ms)", "Saved"],
              title="Ablation: overlap mechanisms")
    t.add_row(["kernel double-buffering (GTX, on-board)",
               f"{r['nodb'] * 1e3:.1f}", f"{r['db'] * 1e3:.1f}",
               f"{(1 - r['db'] / r['nodb']) * 100:.0f}%"])
    t.add_row(["async PCIe overlap (GTS, with transfers)",
               f"{r['sync'] * 1e3:.1f}", f"{r['overlapped'] * 1e3:.1f}",
               f"{(1 - r['overlapped'] / r['sync']) * 100:.0f}%"])
    show("Overlap ablations", t.render())
    assert r["db"] < r["nodb"]
    assert r["overlapped"] < r["sync"]
    # The saving equals the fully-hidden phase: min(H2D, on-board compute),
    # which at 256^3 on the GTS is > 20 ms.
    assert r["sync"] - r["overlapped"] > 0.020
