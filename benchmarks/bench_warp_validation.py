"""Thread-level validation bench: the paper's claims, observed in execution.

Runs the two kernels on the warp-synchronous executor and reports what
the memory system *saw* — coalescing rates, transaction counts, shared
bank behavior — alongside the numerical error against ``numpy.fft``.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.warp_kernels import run_multirow_step, run_shared_x_step
from repro.fft.twiddle import four_step_twiddles
from repro.util.tables import Table


def run():
    rng = np.random.default_rng(11)
    lines = rng.standard_normal((4, 256)) + 1j * rng.standard_normal((4, 256))
    shared = run_shared_x_step(lines)
    shared_err = float(
        np.abs(shared.output - np.fft.fft(lines, axis=-1)).max()
    )

    state = rng.standard_normal((16, 4, 2, 2, 16)) + 1j * rng.standard_normal(
        (16, 4, 2, 2, 16)
    )
    multirow = run_multirow_step(state, 0, 3, twiddle=four_step_twiddles(4, 16))
    return dict(shared=shared, multirow=multirow, shared_err=shared_err)


def test_warp_level_validation(benchmark, show):
    r = run_once(benchmark, run)
    t = Table(
        ["Kernel", "Coalesced", "Transactions", "Shared ops",
         "Bank conflicts", "Max error"],
        title="Thread-level execution observations",
    )
    s = r["shared"].report
    m = r["multirow"].report
    t.add_row([
        "step5 shared-memory (4 x 256-pt)",
        f"{s.coalesced_fraction * 100:.0f}%",
        s.global_transactions,
        s.shared_accesses,
        s.bank_conflict_cycles - s.shared_accesses,
        f"{r['shared_err']:.1e}",
    ])
    t.add_row([
        "steps1-4 multirow 16-pt",
        f"{m.coalesced_fraction * 100:.0f}%",
        m.global_transactions,
        m.shared_accesses,
        0,
        "exact vs vectorized",
    ])
    show("Warp-level kernel validation", t.render())

    # The design claims, as observed facts:
    assert s.coalesced_fraction == 1.0          # every access coalesces
    assert s.shared_conflict_free               # padding works
    assert m.coalesced_fraction == 1.0          # pattern-D bursts coalesce
    assert m.shared_accesses == 0               # steps 1-4 use no shared mem
    assert r["shared_err"] < 1e-10
