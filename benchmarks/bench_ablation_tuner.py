"""Ablation: autotuned launch configuration vs the alternatives.

Automates the paper's hand-tuning ("optimizing the number of threads and
registers through appropriate localization") and prices the whole search
frontier, confirming the published configuration is on it.
"""

from benchmarks.conftest import run_once
from repro.core.tuner import tune_multirow_step
from repro.gpu.specs import GEFORCE_8800_GTX
from repro.util.tables import Table


def test_tuner_ablation(benchmark, show):
    result = run_once(benchmark, lambda: tune_multirow_step(GEFORCE_8800_GTX))
    t = Table(
        ["Radix", "Threads/block", "Registers", "Active/SM", "Passes",
         "Axis time (rel)"],
        title="Launch-configuration search frontier (8800 GTX, Y/Z axis)",
    )
    best = result.best.axis_seconds
    shown = set()
    for c in sorted(result.candidates, key=lambda c: c.axis_seconds):
        if c.radix in shown:
            continue
        shown.add(c.radix)
        t.add_row([c.radix, c.threads_per_block, c.registers,
                   c.active_threads_per_sm, c.passes,
                   f"{c.axis_seconds / best:.2f}x"])
    show("Autotuner ablation (best per radix)", t.render())

    assert result.best.radix == 16            # the paper's decomposition
    assert result.by_radix(16).active_threads_per_sm >= 128
    assert result.by_radix(64).axis_seconds > 2 * best  # register cliff
    assert result.by_radix(4).axis_seconds > 1.5 * best  # pass overhead
