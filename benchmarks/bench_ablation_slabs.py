"""Ablation: slab count for the out-of-core 512^3 transform.

The paper picks eight slabs (the minimum whose two buffers fit a 512 MB
card).  More slabs fit smaller cards but add per-transfer setup and
lower per-slab FFT efficiency; this bench prices the options.
"""

from benchmarks.conftest import run_once
from repro.core.out_of_core import OutOfCorePlan
from repro.gpu.specs import GEFORCE_8800_GT
from repro.util.tables import Table


def run():
    out = {}
    for slabs in (8, 16, 32, 64):
        plan = OutOfCorePlan(512, GEFORCE_8800_GT, n_slabs=slabs)
        out[slabs] = plan.estimate()
    return out


def test_slab_count_ablation(benchmark, show):
    results = run_once(benchmark, run)
    t = Table(
        ["Slabs", "Slab shape", "Stage-1 FFT (s)", "Transfers (s)",
         "Total (s)", "GFLOPS"],
        title="Out-of-core 512^3 slab-count ablation (8800 GT)",
    )
    for slabs, e in results.items():
        t.add_row([
            slabs,
            f"{512 // slabs} x 512 x 512",
            f"{e.stage1_fft:.3f}",
            f"{e.transfer_seconds:.3f}",
            f"{e.total_seconds:.2f}",
            f"{e.total_gflops:.1f}",
        ])
    show("Slab-count ablation", t.render())

    # The paper's choice (fewest slabs that fit) is the fastest.
    totals = {k: v.total_seconds for k, v in results.items()}
    assert totals[8] == min(totals.values())
    # Transfers dominate at every slab count — the Section 3.3 story.
    for e in results.values():
        assert e.transfer_seconds > 0.5 * e.total_seconds
