"""The reproduction scorecard bench: every table's error, one screen."""

from benchmarks.conftest import run_once
from repro.harness.scorecard import scorecard
from repro.util.tables import Table


def test_scorecard(benchmark, show):
    scores = run_once(benchmark, scorecard)
    t = Table(
        ["Experiment", "Comparisons", "Median error", "Max error",
         "Worst case"],
        title="Reproduction scorecard (model vs paper)",
    )
    for s in scores:
        t.add_row([
            s.experiment,
            s.n,
            f"{s.median_error * 100:.1f}%",
            f"{s.max_error * 100:.1f}%",
            s.worst_case,
        ])
    show("Scorecard", t.render())

    for s in scores:
        assert s.median_error < 0.10, s.experiment
    core = {s.experiment: s for s in scores}
    for name in ("table7", "table8", "table10", "table12"):
        assert core[name].max_error < 0.10, name
