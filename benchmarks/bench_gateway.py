"""ASGI gateway under load: keep-alive concurrency, parity, shed paths.

The gateway's acceptance experiment, in three sections:

* **concurrency** — N clients (1000 in full mode) each hold one
  persistent keep-alive socket against the stdlib
  :class:`~repro.serve.httpd.AsgiHttpServer` and drive a seeded
  ``POST /v1/fft/wait`` through a live threaded ``FFTServer`` at once.
  Every response must come back 200 with a unique job id and a grid
  bit-identical to the direct engine path.
* **parity** — the same seeded workload submitted directly
  (``FFTServer.submit``) and through the gateway's ASGI surface on
  identical simulated hardware.  The batching throughput BENCH_serve
  measures is in *simulated* seconds, so the HTTP front door must not
  change it: the gateway/direct throughput ratio has to stay >=
  ``PARITY_BAR`` (0.9 — "within ~10%").
* **shed** — the 429/503 pressure paths exercised deliberately
  (bounded queue, tenant quota, gateway overload, drain lifecycle),
  counting one typed refusal per code with its Retry-After hint.

Results land in ``BENCH_gateway.json``; CI re-runs the quick sections
and gates on them::

    python benchmarks/bench_gateway.py --quick --check-against BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # CLI: python benchmarks/bench_gateway.py
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.core.api import GpuFFT3D
from repro.serve import (
    AdmissionPolicy,
    AsgiHttpServer,
    CoalescePolicy,
    ErrorBody,
    ErrorCode,
    FFTRequest,
    FFTServer,
    Gateway,
    GatewayPolicy,
    HttpClient,
    SubmitBody,
    asgi_request,
    decode_array,
    needs_retry_after,
)
from repro.serve.wire import DTYPES

#: Gateway-vs-direct simulated throughput must stay within ~10%.
PARITY_BAR = 0.9
#: CI gate: current parity ratio must be >= committed * this.
REGRESSION_TOLERANCE = 0.8
#: Shed codes the bench must observe, each with its Retry-After hint.
SHED_CODES = ("queue_full", "tenant_quota", "gateway_overload", "draining")

SHAPE = (16, 16, 16)
N_SEEDS = 8
MAX_BATCH = 16

FULL = {"connections": 1000, "parity_requests": 128}
QUICK = {"connections": 64, "parity_requests": 48}


def _grid(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(SHAPE) + 1j * rng.standard_normal(SHAPE)
    ).astype(np.complex64)


def _payload(seed: int) -> bytes:
    return SubmitBody(shape=SHAPE, data=_grid(seed)).encode()


def _http(app, method, path, headers=None, body=b""):
    """One synchronous in-process request against the gateway."""
    return asyncio.run(asgi_request(app, method, path, headers, body))


# ----------------------------------------------------------------------
# Section 1: keep-alive concurrency over real sockets
# ----------------------------------------------------------------------


async def _drive_connections(port: int, n_conns: int):
    """All ``n_conns`` sockets open at once, one submit-and-wait each."""
    clients = [HttpClient("127.0.0.1", port) for _ in range(n_conns)]
    gate = asyncio.Semaphore(128)  # bound the connect burst, not the fleet

    async def connect(c: HttpClient) -> None:
        async with gate:
            await c.connect()

    await asyncio.gather(*(connect(c) for c in clients))
    t0 = time.perf_counter()

    async def one(i: int, c: HttpClient):
        return await c.request(
            "POST",
            "/v1/fft/wait",
            headers={"x-tenant": f"bench-{i % 32}"},
            body=_payload(i % N_SEEDS),
        )

    responses = await asyncio.gather(
        *(one(i, c) for i, c in enumerate(clients))
    )
    wall = time.perf_counter() - t0
    await asyncio.gather(*(c.aclose() for c in clients))
    return responses, wall


def _concurrency_section(n_conns: int) -> dict:
    with FFTServer(
        start=True,
        max_depth=4 * n_conns,
        coalesce=CoalescePolicy(max_batch=MAX_BATCH, max_wait_s=0.0),
    ) as srv:
        gw = Gateway(srv, policy=GatewayPolicy(max_inflight=2 * n_conns))

        async def scenario():
            async with AsgiHttpServer(gw) as server:
                return await _drive_connections(server.port, n_conns)

        responses, wall = asyncio.run(scenario())
        stats = srv.stats()

    with GpuFFT3D(SHAPE) as plan:
        expected = {seed: plan.forward(_grid(seed)) for seed in range(N_SEEDS)}
    ok = sum(1 for r in responses if r.status == 200)
    job_ids = {r.header("x-fft-job") for r in responses if r.status == 200}
    identical = all(
        np.array_equal(
            decode_array(r.body, SHAPE, DTYPES["single"]),
            expected[i % N_SEEDS],
        )
        for i, r in enumerate(responses)
        if r.status == 200
    )
    return {
        "connections": n_conns,
        "ok": ok,
        "unique_job_ids": len(job_ids),
        "bit_identical": identical,
        "wall_seconds": wall,
        "requests_per_second": n_conns / wall if wall else 0.0,
        "completed": stats.completed,
        "batches": stats.batches,
    }


# ----------------------------------------------------------------------
# Section 2: simulated-throughput parity with the direct path
# ----------------------------------------------------------------------


def _parity_server() -> FFTServer:
    return FFTServer(
        start=False,
        max_depth=4096,
        coalesce=CoalescePolicy(max_batch=MAX_BATCH, max_wait_s=0.0),
    )


def _parity_section(n_requests: int) -> dict:
    # Direct: the BENCH_serve batching path, no HTTP anywhere.
    with _parity_server() as direct:
        futs = [
            direct.submit(
                FFTRequest(_grid(i % N_SEEDS), tenant=f"bench-{i % 32}")
            )
            for i in range(n_requests)
        ]
        t0 = time.perf_counter()
        direct.run_pending()
        direct_wall = time.perf_counter() - t0
        direct_elapsed = direct.simulator.elapsed
        direct_stats = direct.stats()
        direct_outs = [f.result() for f in futs]

    # Gateway: the same submission stream through the ASGI surface.
    with _parity_server() as srv:
        gw = Gateway(srv)
        t0 = time.perf_counter()
        accepted = [
            _http(
                gw,
                "POST",
                "/v1/fft",
                {"x-tenant": f"bench-{i % 32}"},
                _payload(i % N_SEEDS),
            )
            for i in range(n_requests)
        ]
        submit_wall = time.perf_counter() - t0
        assert all(r.status == 202 for r in accepted)
        t0 = time.perf_counter()
        srv.run_pending()
        gw_wall = time.perf_counter() - t0
        gw_elapsed = srv.simulator.elapsed
        gw_stats = srv.stats()
        job_ids = [json.loads(r.body)["job_id"] for r in accepted]
        results = [
            _http(gw, "GET", f"/v1/jobs/{job_id}/result")
            for job_id in job_ids
        ]

    identical = all(
        r.status == 200
        and np.array_equal(
            decode_array(r.body, SHAPE, DTYPES["single"]), out
        )
        for r, out in zip(results, direct_outs)
    )
    direct_rps = (
        direct_stats.completed / direct_elapsed if direct_elapsed else 0.0
    )
    gw_rps = gw_stats.completed / gw_elapsed if gw_elapsed else 0.0
    return {
        "requests": n_requests,
        "direct": {
            "completed": direct_stats.completed,
            "batches": direct_stats.batches,
            "sim_elapsed_seconds": direct_elapsed,
            "throughput_rps": direct_rps,
            "dispatch_wall_seconds": direct_wall,
        },
        "gateway": {
            "completed": gw_stats.completed,
            "batches": gw_stats.batches,
            "sim_elapsed_seconds": gw_elapsed,
            "throughput_rps": gw_rps,
            "dispatch_wall_seconds": gw_wall,
            "submit_wall_seconds": submit_wall,
            "submit_overhead_ms_per_req": submit_wall / n_requests * 1e3,
        },
        "throughput_ratio": gw_rps / direct_rps if direct_rps else 0.0,
        "bit_identical": identical,
    }


# ----------------------------------------------------------------------
# Section 3: the 429/503 shed paths, deliberately provoked
# ----------------------------------------------------------------------


def _expect_shed(resp, code: str, counts: dict) -> None:
    body = ErrorBody.parse(resp.body)
    assert str(body.code) == code, f"expected {code}, got {body.code}"
    assert resp.status in (429, 503)
    if needs_retry_after(ErrorCode(code)):
        assert resp.header("retry-after") is not None
    counts[code] = counts.get(code, 0) + 1


def _shed_section() -> dict:
    counts: dict[str, int] = {}
    statuses: dict[str, int] = {}

    with FFTServer(start=False, max_depth=2) as srv:  # bounded queue: 429
        gw = Gateway(srv)
        tenant = {"x-tenant": "shed"}
        for i in range(4):
            resp = _http(gw, "POST", "/v1/fft", tenant, _payload(i))
            if resp.status != 202:
                _expect_shed(resp, "queue_full", counts)
                statuses["queue_full"] = resp.status

    with FFTServer(  # per-tenant quota: 429
        start=False, admission=AdmissionPolicy(max_pending_per_tenant=1)
    ) as srv:
        gw = Gateway(srv)
        tenant = {"x-tenant": "greedy"}
        for i in range(3):
            resp = _http(gw, "POST", "/v1/fft", tenant, _payload(i))
            if resp.status != 202:
                _expect_shed(resp, "tenant_quota", counts)
                statuses["tenant_quota"] = resp.status

    with FFTServer(start=False) as srv:  # gateway concurrency bound: 429
        gw = Gateway(srv, policy=GatewayPolicy(max_inflight=1))
        tenant = {"x-tenant": "surge"}

        async def overload():
            waiter = asyncio.ensure_future(
                asgi_request(gw, "POST", "/v1/fft/wait", tenant, _payload(0))
            )
            while gw._inflight < 1:
                await asyncio.sleep(0.001)
            shed = await asgi_request(
                gw, "POST", "/v1/fft", tenant, _payload(1)
            )
            srv.run_pending()
            await waiter
            return shed

        resp = asyncio.run(overload())
        _expect_shed(resp, "gateway_overload", counts)
        statuses["gateway_overload"] = resp.status

    with FFTServer(start=False) as srv:  # drain lifecycle: 503 then 202
        gw = Gateway(srv)
        tenant = {"x-tenant": "drainee"}
        srv.begin_drain()
        resp = _http(gw, "POST", "/v1/fft", tenant, _payload(0))
        _expect_shed(resp, "draining", counts)
        statuses["draining"] = resp.status
        health_while_draining = _http(gw, "GET", "/v1/health").status
        srv.end_drain()
        readmitted = _http(gw, "POST", "/v1/fft", tenant, _payload(0)).status

    return {
        "counts": counts,
        "http_statuses": statuses,
        "health_status_while_draining": health_while_draining,
        "readmitted_status_after_drain": readmitted,
        "all_codes_exercised": sorted(counts) == sorted(SHED_CODES),
    }


# ----------------------------------------------------------------------
# Payload assembly, pytest entry, CLI
# ----------------------------------------------------------------------


def run_section(cfg: dict) -> dict:
    """One (connections, parity, shed) sweep at the given scale."""
    return {
        "concurrency": _concurrency_section(cfg["connections"]),
        "parity": _parity_section(cfg["parity_requests"]),
        "shed": _shed_section(),
    }


def build_payload(quick_only: bool = False) -> dict:
    payload = {
        "parity_bar": PARITY_BAR,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "shed_codes": list(SHED_CODES),
        "quick": run_section(QUICK),
    }
    if not quick_only:
        payload["full"] = run_section(FULL)
    return payload


def _fmt(section: dict, name: str) -> str:
    conc, par, shed = section["concurrency"], section["parity"], section["shed"]
    return (
        f"{name}: {conc['connections']} keep-alive connections\n"
        f"  wire:   {conc['ok']}/{conc['connections']} ok, "
        f"{conc['unique_job_ids']} unique jobs, "
        f"{conc['requests_per_second']:.0f} req/s wall, "
        f"bit-identical={conc['bit_identical']}\n"
        f"  parity: gateway {par['gateway']['throughput_rps']:.0f} rps vs "
        f"direct {par['direct']['throughput_rps']:.0f} rps (simulated) -> "
        f"ratio {par['throughput_ratio']:.3f}, "
        f"+{par['gateway']['submit_overhead_ms_per_req']:.2f} ms/req submit\n"
        f"  shed:   {shed['counts']} "
        f"(drain health={shed['health_status_while_draining']}, "
        f"re-admit={shed['readmitted_status_after_drain']})"
    )


def test_gateway_concurrency_and_parity(benchmark, show):
    """1000 keep-alive sockets; simulated throughput within 10% of direct."""
    from benchmarks.conftest import run_once, write_bench_json

    payload = run_once(benchmark, build_payload)
    path = write_bench_json("gateway", payload)
    show(
        "ASGI gateway under load",
        _fmt(payload["full"], "full")
        + "\n"
        + _fmt(payload["quick"], "quick")
        + f"\njson: {path}",
    )

    full = payload["full"]
    conc = full["concurrency"]
    # The wire holds at four-digit concurrency: every request answered,
    # no job id lost or duplicated, every grid exact.
    assert conc["connections"] >= 1000
    assert conc["ok"] == conc["connections"]
    assert conc["unique_job_ids"] == conc["connections"]
    assert conc["bit_identical"]
    # The HTTP front door does not tax the batching throughput the
    # serving layer was accepted on.
    for section in (full, payload["quick"]):
        assert section["parity"]["throughput_ratio"] >= PARITY_BAR
        assert section["parity"]["bit_identical"]
        assert section["shed"]["all_codes_exercised"]
        assert section["shed"]["health_status_while_draining"] == 503
        assert section["shed"]["readmitted_status_after_drain"] == 202


def _check_against(payload: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []

    committed = baseline["quick"]["parity"]["throughput_ratio"]
    current = payload["quick"]["parity"]["throughput_ratio"]
    # Same capped-reference scheme as bench_hostpath: the floor protects
    # the parity contract, not the best ratio ever committed.
    floor = min(committed, PARITY_BAR) * REGRESSION_TOLERANCE
    status = "ok" if current >= floor else "REGRESSION"
    print(
        f"parity throughput_ratio: current {current:.3f} vs committed "
        f"{committed:.3f} (floor {floor:.3f}) -> {status}"
    )
    if current < floor:
        failures.append("throughput_ratio")

    for check, want in (
        ("bit_identical", payload["quick"]["parity"]["bit_identical"]),
        ("all_codes_exercised", payload["quick"]["shed"]["all_codes_exercised"]),
    ):
        print(f"{check}: {want} -> {'ok' if want else 'REGRESSION'}")
        if not want:
            failures.append(check)

    conc = payload["quick"]["concurrency"]
    wire_ok = (
        conc["ok"] == conc["connections"]
        and conc["unique_job_ids"] == conc["connections"]
        and conc["bit_identical"]
    )
    print(
        f"wire: {conc['ok']}/{conc['connections']} ok, "
        f"{conc['unique_job_ids']} unique -> "
        f"{'ok' if wire_ok else 'REGRESSION'}"
    )
    if not wire_ok:
        failures.append("wire")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the small CI-smoke sections (64 connections, no full)",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        metavar="JSON",
        help="compare quick-mode results against a committed "
        "BENCH_gateway.json; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    payload = build_payload(quick_only=args.quick)
    print(_fmt(payload["quick"], "quick"))
    if "full" in payload:
        print(_fmt(payload["full"], "full"))

    if args.check_against is not None:
        return _check_against(payload, args.check_against)

    out = _ROOT / "BENCH_gateway.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
