"""Ablation: shared-memory padding on/off (bank conflicts, Section 3.2).

"We employ a padding technique for efficient data exchange without bank
conflicts."  Without it, the 16-way conflicted exchanges serialize and the
step-5 kernel turns compute-bound everywhere.
"""

from benchmarks.conftest import run_once
from repro.core.kernels import shared_x_step_spec
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import ALL_GPUS
from repro.gpu.timing import time_kernel
from repro.util.tables import Table


def run():
    out = {}
    for device in ALL_GPUS:
        ms = MemorySystem(device)
        padded = shared_x_step_spec(device, 256, 65536, padded=True)
        conflicted = shared_x_step_spec(device, 256, 65536, padded=False)
        out[device.name] = (
            time_kernel(device, padded, ms).seconds,
            time_kernel(device, conflicted, ms).seconds,
        )
    return out


def test_padding_ablation(benchmark, show):
    times = run_once(benchmark, run)
    t = Table(["Model", "Padded (ms)", "Conflicted (ms)", "Slowdown"],
              title="Ablation: shared-memory padding in step 5")
    for name, (good, bad) in times.items():
        t.add_row([name, f"{good * 1e3:.2f}", f"{bad * 1e3:.2f}",
                   f"{bad / good:.2f}x"])
    show("Bank-conflict padding ablation", t.render())
    for name, (good, bad) in times.items():
        # 16-way serialized exchanges at least double the kernel time.
        assert bad > 2.0 * good, name
