"""Extension bench: strong scaling of a slab-decomposed multi-GPU FFT.

The paper's single-card PCIe findings, extrapolated: with the all-to-all
exchange crossing the host bus, adding cards only pays once the link is
fast enough — on the GTX's PCIe 1.1, two cards are *slower* than one.
"""

from benchmarks.conftest import run_once
from repro.core.multi_gpu import MultiGpuFFT3D
from repro.gpu.specs import GEFORCE_8800_GT, GEFORCE_8800_GTX
from repro.util.tables import Table


def run():
    return {
        dev.name: MultiGpuFFT3D(256, 2, device=dev).scaling_curve((1, 2, 4, 8))
        for dev in (GEFORCE_8800_GTX, GEFORCE_8800_GT)
    }


def test_multi_gpu_scaling(benchmark, show):
    curves = run_once(benchmark, run)
    t = Table(
        ["Device", "GPUs", "XY (ms)", "Exchange (ms)", "Z (ms)",
         "Total (ms)", "GFLOPS", "Exchange share"],
        title="Strong scaling, 256^3 slab decomposition",
    )
    for name, curve in curves.items():
        for g in sorted(curve):
            e = curve[g]
            t.add_row([
                name, g,
                f"{e.xy_seconds * 1e3:.1f}",
                f"{e.exchange_seconds * 1e3:.1f}",
                f"{e.z_seconds * 1e3:.1f}",
                f"{e.total_seconds * 1e3:.1f}",
                f"{e.total_gflops:.1f}",
                f"{e.exchange_fraction * 100:.0f}%",
            ])
    show("Multi-GPU scaling (extension)", t.render())

    gtx = curves["8800 GTX"]
    assert gtx[2].total_seconds > gtx[1].total_seconds  # PCIe 1.1 loses
    gt = curves["8800 GT"]
    assert gt[8].total_seconds < gt[1].total_seconds    # PCIe 2.0 scales
