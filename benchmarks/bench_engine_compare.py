"""Host-engine shootout: real wall-clock statistics per 1-D engine.

pytest-benchmark timing of the four host engines on the same batched
workload — the data the wisdom cache acts on.
"""

import numpy as np
import pytest

from repro.fft.bluestein import fft_any
from repro.fft.cooley_tukey import fft_pow2
from repro.fft.split_radix import split_radix_fft
from repro.fft.stockham import stockham_fft

ENGINES = {
    "four_step": fft_pow2,
    "stockham": stockham_fft,
    "split_radix": split_radix_fft,
    "bluestein_pow2_path": fft_any,
}


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((512, 256)) + 1j * rng.standard_normal((512, 256))
    ).astype(np.complex64)


@pytest.mark.parametrize("engine", sorted(ENGINES), ids=str)
def test_engine_throughput(benchmark, engine, workload):
    fn = ENGINES[engine]
    out = benchmark(fn, workload)
    # Same answer from every engine.
    np.testing.assert_allclose(
        out, np.fft.fft(workload, axis=-1), rtol=1e-4, atol=1e-3
    )
