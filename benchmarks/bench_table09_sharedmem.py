"""Regenerate Table 9: the shared-memory effect on the 8800 GTS."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table9(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table9"))
    show("Table 9: X-axis with shared memory / texture / non-coalesced "
         "(8800 GTS, 256^3)", result.text)
    rows = result.rows
    # Strict ordering: shared < texture < non-coalesced.
    assert rows["shared"]["total_ms"] < rows["texture"]["total_ms"]
    assert rows["texture"]["total_ms"] < rows["non_coalesced"]["total_ms"]
    # Section 4.3: "more than 25% performance advantage" for shared memory.
    assert rows["texture"]["total_ms"] > 1.20 * rows["shared"]["total_ms"]
    # Totals near the published ones.
    for key, row in rows.items():
        paper = paper_data.TABLE9_GTS[key]["total"]
        assert row["total_ms"] == pytest.approx(paper, rel=0.15), key
