"""Regenerate Table 11: FFTW on the quad-core CPUs."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table11(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table11"))
    show("Table 11: FFTW 3.2alpha2, single precision, 256^3", result.text)
    for name, row in result.rows.items():
        paper = paper_data.TABLE11[name]
        assert row["ms"] == pytest.approx(paper[0], rel=0.05), name
        assert row["gflops"] == pytest.approx(paper[1], rel=0.05), name
    # Both CPUs land near 10.5 GFLOPS — an order of magnitude below the
    # paper's GPU kernel.
    assert all(9 < r["gflops"] < 12 for r in result.rows.values())
