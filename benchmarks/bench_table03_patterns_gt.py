"""Regenerate Table 3: pattern-pair bandwidth on the 8800 GT."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table3(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table3"))
    show("Table 3: achieved bandwidth per access-pattern pair, 8800 GT",
         result.text)
    rows = result.rows
    # A/B-involved pairs stay near the single-stream copy rate...
    for pair in ("AA", "AB", "BA", "BB", "CA", "DA"):
        assert rows[pair] > 40.0, pair
    # ...while pure C/D pairs collapse (paper: 27.8-34.4 GB/s).
    for pair in ("CC", "CD", "DC", "DD"):
        assert rows[pair] < 38.0, pair
    # Quantitative spot checks against the published cells.
    assert rows["CC"] == pytest.approx(paper_data.TABLE3_GT["C"][2], rel=0.12)
    assert rows["AA"] == pytest.approx(paper_data.TABLE3_GT["A"][0], rel=0.05)
