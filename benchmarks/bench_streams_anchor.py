"""Regenerate the Section 2.1 stream-count sweep (calibration anchors)."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_stream_sweep(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("streams"))
    show("Section 2.1: multirow copy bandwidth vs stream count (8800 GTX)",
         result.text)
    # The two published anchors.
    assert result.rows[1] == pytest.approx(71.7, rel=0.03)
    assert result.rows[256] == pytest.approx(30.7, rel=0.05)
    # Monotone non-increasing sweep.
    values = [result.rows[c] for c in sorted(result.rows)]
    for a, b in zip(values, values[1:]):
        assert b <= a * 1.02
