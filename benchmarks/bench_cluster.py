"""Cluster scaling: the BENCH_serve mix sharded over 1/2/4/8 nodes.

The cluster tier's acceptance experiment: the same seeded 64-client
mixed-shape workload the serving benchmark uses
(:mod:`benchmarks.bench_serve`) is pushed through :class:`FFTCluster`
at 1, 2, 4 and 8 nodes on identical simulated hardware.  Requests shard
by consistent hashing of the plan-cache key + tenant with bounded-load
spill, so the measure is the whole routing tier, not an idealized
round-robin.  Cluster throughput is completed requests over the
*makespan* — the busiest node's simulated clock — so imbalance shows up
as lost scaling, exactly as it would on real hardware.

Acceptance: >= 6x throughput at 8 nodes vs 1 node, every result
bit-identical to the standalone ``GpuFFT3D`` path, zero shed or lost
requests.  Results land in ``BENCH_cluster.json``; the CI smoke gate::

    python benchmarks/bench_cluster.py --quick --check-against BENCH_cluster.json

re-runs the quick workload and fails (exit 1) when the measured 8-node
speedup regresses below ``REGRESSION_TOLERANCE`` of the committed
baseline.  The comparison is on simulated-time ratios, which are
deterministic, so the gate is machine-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # CLI: python benchmarks/bench_cluster.py
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.cluster import FFTCluster
from repro.core.api import GpuFFT3D
from repro.serve import CoalescePolicy, FFTRequest

N_CLIENTS = 64
SHAPES = ((32, 32, 32), (64, 32, 32), (64, 64, 64))
NODE_COUNTS = (1, 2, 4, 8)
SPEEDUP_BAR = 6.0  # at 8 nodes
#: CI gate: current quick-mode 8-node speedup must be >= committed * this.
REGRESSION_TOLERANCE = 0.8
MAX_BATCH = 8
#: Bounded-load spill threshold: tighter than the 1.25 default because
#: the mix is large and key-diverse, so balance costs little warmth.
BALANCE_FACTOR = 1.1

FULL = {"requests": 256}
QUICK = {"requests": 96}


def _workload(n_requests):
    """The seeded BENCH_serve mix (same seed, shapes and tenants)."""
    rng = np.random.default_rng(20080819)
    reqs = []
    for i in range(n_requests):
        shape = SHAPES[i % len(SHAPES)]
        x = (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        ).astype(np.complex64)
        reqs.append(FFTRequest(x, tenant=f"client-{i % N_CLIENTS}"))
    return reqs


def _reference(reqs):
    """Fault-free spectra via the standalone plans (bit-identity oracle)."""
    plans = {}
    outs = []
    try:
        for req in reqs:
            key = req.plan_key()
            if key not in plans:
                plans[key] = GpuFFT3D(
                    key.shape, precision=key.precision, norm=key.norm
                )
            outs.append(plans[key].forward(req.x))
    finally:
        for plan in plans.values():
            plan.close()
    return outs


def _run_point(reqs, refs, n_nodes):
    """One operating point: the whole mix through an n-node cluster."""
    with FFTCluster(
        n_nodes=n_nodes,
        start=False,
        serial_dispatch=True,
        max_depth=4096,
        balance_factor=BALANCE_FACTOR,
        coalesce=CoalescePolicy(max_batch=MAX_BATCH, max_wait_s=0.0),
    ) as cluster:
        futs = [cluster.submit(req) for req in reqs]
        cluster.run_pending()
        elapsed = cluster.elapsed
        stats = cluster.stats()
        identical = all(
            f.exception() is None and np.array_equal(f.result(), ref)
            for f, ref in zip(futs, refs)
        )
        per_node = {
            name: node_stats.submitted
            for name, node_stats in sorted(stats.nodes.items())
        }
    spread = max(per_node.values()) / (len(reqs) / n_nodes)
    return {
        "nodes": n_nodes,
        "completed": stats.completed,
        "failed": stats.failed,
        "rejected": sum(stats.rejected.values()),
        "elapsed_seconds": elapsed,
        "throughput_rps": stats.completed / elapsed if elapsed else 0.0,
        "per_node_submitted": per_node,
        "load_spread": spread,  # busiest node vs perfect balance (1.0)
        "bit_identical": identical,
    }


def run_section(cfg) -> dict:
    """The node-count sweep over one workload size."""
    reqs = _workload(cfg["requests"])
    refs = _reference(reqs)
    points = [_run_point(reqs, refs, n) for n in NODE_COUNTS]
    base = points[0]["throughput_rps"]
    for pt in points:
        pt["speedup_vs_1"] = pt["throughput_rps"] / base if base else 0.0
        pt["scaling_efficiency"] = pt["speedup_vs_1"] / pt["nodes"]
    return {
        "requests": cfg["requests"],
        "clients": N_CLIENTS,
        "shapes": [list(s) for s in SHAPES],
        "points": points,
        "speedup_at_8": points[-1]["speedup_vs_1"],
        "efficiency_at_8": points[-1]["scaling_efficiency"],
        "bit_identical": all(pt["bit_identical"] for pt in points),
    }


def build_payload(quick_only: bool = False) -> dict:
    """Assemble the BENCH_cluster.json payload."""
    payload = {
        "speedup_bar": SPEEDUP_BAR,
        "node_counts": list(NODE_COUNTS),
        "max_batch": MAX_BATCH,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "quick": run_section(QUICK),
    }
    if not quick_only:
        payload["full"] = run_section(FULL)
        payload["speedup"] = payload["full"]["speedup_at_8"]
    return payload


def _fmt(section, name):
    lines = [
        f"{name}: {section['requests']} requests, "
        f"{section['clients']} tenants, shapes {section['shapes']}"
    ]
    for pt in section["points"]:
        lines.append(
            f"  {pt['nodes']:2d} node(s): "
            f"{pt['elapsed_seconds'] * 1e3:8.3f} ms makespan, "
            f"{pt['throughput_rps']:9.0f} rps, "
            f"{pt['speedup_vs_1']:5.2f}x "
            f"(eff {pt['scaling_efficiency']:.2f}, "
            f"spread {pt['load_spread']:.2f})"
        )
    lines.append(f"  bit-identical: {section['bit_identical']}")
    return "\n".join(lines)


def test_cluster_scaling(benchmark, show):
    """Sharded serving: >= 6x throughput at 8 nodes, bit-identical."""
    from benchmarks.conftest import run_once, write_bench_json

    payload = run_once(benchmark, build_payload)
    path = write_bench_json("cluster", payload)

    full, quick = payload["full"], payload["quick"]
    show(
        "Cluster scaling on the BENCH_serve mix",
        _fmt(full, "full") + "\n" + _fmt(quick, "quick") + f"\njson: {path}",
    )

    # The tentpole bar: near-linear scaling through the routing tier.
    assert full["speedup_at_8"] >= SPEEDUP_BAR
    # Sharding is a pure routing change: results identical, nothing lost.
    assert full["bit_identical"] and quick["bit_identical"]
    for pt in full["points"]:
        assert pt["completed"] == full["requests"]
        assert pt["failed"] == 0 and pt["rejected"] == 0
    # Throughput rises monotonically with node count.
    rps = [pt["throughput_rps"] for pt in full["points"]]
    assert rps == sorted(rps)


def _check_against(payload: dict, baseline_path: Path) -> int:
    """Compare quick-mode scaling against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    committed = baseline["quick"]["speedup_at_8"]
    current = payload["quick"]["speedup_at_8"]
    # Cap the reference at the acceptance bar so a lucky committed run
    # can't ratchet the floor above the contract the gate protects.
    floor = min(committed, SPEEDUP_BAR) * REGRESSION_TOLERANCE
    status = "ok" if current >= floor else "REGRESSION"
    print(
        f"speedup_at_8: current {current:.2f}x vs committed {committed:.2f}x "
        f"(floor {floor:.2f}x) -> {status}"
    )
    if current < floor:
        failures.append("speedup_at_8")
    if not payload["quick"]["bit_identical"]:
        print("bit_identical: False -> REGRESSION")
        failures.append("bit_identical")
    return 1 if failures else 0


def main(argv=None) -> int:
    """CLI entry: regenerate BENCH_cluster.json or gate against it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the small CI-smoke workload (no full section)",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        metavar="JSON",
        help="compare quick-mode scaling against a committed "
        "BENCH_cluster.json; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    payload = build_payload(quick_only=args.quick)
    print(_fmt(payload["quick"], "quick"))
    if "full" in payload:
        print(_fmt(payload["full"], "full"))

    if args.check_against is not None:
        return _check_against(payload, args.check_against)

    out = _ROOT / "BENCH_cluster.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
