"""Regenerate Figure 1: 256^3 performance across algorithms and cards."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig1(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("fig1"))
    show("Figure 1: 3-D FFT of size 256^3 (GFLOPS)", result.text)
    for name, row in result.rows.items():
        # >3x CUFFT (the abstract's headline claim).
        assert row["ours"] > 3.0 * row["cufft"], name
        # ~2x the conventional transpose algorithm.
        assert 1.5 < row["ours"] / row["conventional"] < 2.8, name
        # Within 10% of the paper's own bar for our kernel.
        assert row["ours"] == pytest.approx(row["paper"]["ours"], rel=0.10), name
    # "nearly 80 GFLOPS on a top-end GPU".
    assert result.rows["8800 GTX"]["ours"] > 75
