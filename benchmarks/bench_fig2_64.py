"""Regenerate Figure 2: 64^3 performance across algorithms and cards."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig2(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("fig2"))
    show("Figure 2: 3-D FFT of size 64^3 (GFLOPS)", result.text)
    for name, row in result.rows.items():
        # "our 3-D FFT still outperforms the CUFFT library by several
        # factors" at the small sizes too.
        assert row["ours"] > 2.5 * row["cufft"], name
        assert row["ours"] > 1.5 * row["conventional"], name
    # Smaller grids sustain fewer GFLOPS than 256^3 (Section 4.6).
    fig1 = run_experiment("fig1")
    for name in result.rows:
        assert result.rows[name]["ours"] < fig1.rows[name]["ours"]
