"""Dynamic-batching FFT service vs request-at-a-time dispatch.

The serving layer's acceptance experiment: a seeded 64-client mixed-shape
workload is pushed through ``FFTServer`` twice on identical simulated
hardware — once with the coalescer disabled (``max_batch=1``, every
request dispatched alone) and once with dynamic batching
(``max_batch=16``).  Batching must be at least 2x faster in simulated
time, every accepted result must be bit-identical to the standalone
``GpuFFT3D`` path, and an overloaded bounded queue must shed with typed,
counted rejections.  An offered-load sweep records throughput and
p50/p99 latency per operating point.

Results are also emitted as ``BENCH_serve.json`` for CI consumption.
"""

import numpy as np

from benchmarks.conftest import run_once, write_bench_json
from repro.core.api import GpuFFT3D
from repro.serve import CoalescePolicy, FFTRequest, FFTServer, ServeError

N_CLIENTS = 64
REQS_PER_CLIENT = 2
SHAPES = ((32, 32, 32), (64, 32, 32), (64, 64, 64))
SPEEDUP_BAR = 2.0
OVERLOAD_DEPTH = 48


def _workload(n_requests):
    """The seeded mixed-shape request stream shared by every run."""
    rng = np.random.default_rng(20080819)
    reqs = []
    for i in range(n_requests):
        shape = SHAPES[i % len(SHAPES)]
        x = (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        ).astype(np.complex64)
        reqs.append(FFTRequest(x, tenant=f"client-{i % N_CLIENTS}"))
    return reqs


def _serve(reqs, max_batch, max_depth=1024):
    """Drive one server run; returns (futures, rejections, stats, metrics, elapsed)."""
    srv = FFTServer(
        start=False,
        max_depth=max_depth,
        coalesce=CoalescePolicy(max_batch=max_batch, max_wait_s=0.0),
    )
    futs, rejected = [], []
    for req in reqs:
        try:
            futs.append(srv.submit(req))
        except ServeError as exc:
            rejected.append(exc)
    srv.run_pending()
    elapsed = srv.simulator.elapsed
    busy = dict(srv.simulator.engine_busy_seconds())
    stats = srv.stats()
    lat = srv.metrics.histogram("serve.latency.seconds", "s")
    point = {
        "offered": len(reqs),
        "completed": stats.completed,
        "shed": stats.rejected_total,
        "shed_rate": stats.rejected_total / len(reqs),
        "reject_reasons": dict(stats.rejected),
        "batches": stats.batches,
        "elapsed_seconds": elapsed,
        "throughput_rps": stats.completed / elapsed if elapsed else 0.0,
        "p50_latency_ms": lat.percentile(50) * 1e3,
        "p99_latency_ms": lat.percentile(99) * 1e3,
        "device_busy_fraction": max(busy.values()) / elapsed if elapsed else 0.0,
    }
    srv.close()
    return futs, rejected, point


def _assert_bit_identical(futs):
    """Every accepted result must match the unserved GpuFFT3D path exactly."""
    plans = {}
    try:
        for fut in futs:
            key = fut.request.plan_key()
            if key not in plans:
                plans[key] = GpuFFT3D(
                    key.shape, precision=key.precision, norm=key.norm
                )
            assert np.array_equal(fut.result(), plans[key].forward(fut.request.x))
    finally:
        for plan in plans.values():
            plan.close()


def test_serve_dynamic_batching_speedup(benchmark, show):
    """64 clients, mixed shapes: coalesced dispatch vs one-at-a-time."""
    reqs = _workload(N_CLIENTS * REQS_PER_CLIENT)

    def run():
        solo = _serve(reqs, max_batch=1)
        dyn = _serve(reqs, max_batch=16)
        sweep = [
            _serve(_workload(offered), max_batch=16)[2]
            for offered in (16, 64, 128)
        ]
        over = _serve(reqs, max_batch=16, max_depth=OVERLOAD_DEPTH)
        return solo, dyn, sweep, over

    solo, dyn, sweep, over = run_once(benchmark, run)

    (solo_futs, solo_rej, solo_pt) = solo
    (dyn_futs, dyn_rej, dyn_pt) = dyn
    (over_futs, over_rej, over_pt) = over
    speedup = solo_pt["elapsed_seconds"] / dyn_pt["elapsed_seconds"]

    _assert_bit_identical(dyn_futs)
    _assert_bit_identical(over_futs)

    payload = {
        "clients": N_CLIENTS,
        "requests": len(reqs),
        "shapes": [list(s) for s in SHAPES],
        "request_at_a_time": solo_pt,
        "dynamic_batching": dyn_pt,
        "speedup": speedup,
        "speedup_bar": SPEEDUP_BAR,
        "load_sweep": sweep,
        "overload": over_pt,
    }
    path = write_bench_json("serve", payload)

    show(
        f"FFT serving: {len(reqs)} requests from {N_CLIENTS} clients",
        f"request-at-a-time: {solo_pt['elapsed_seconds'] * 1e3:8.3f} ms "
        f"({solo_pt['batches']} dispatches)\n"
        f"dynamic batching:  {dyn_pt['elapsed_seconds'] * 1e3:8.3f} ms "
        f"({dyn_pt['batches']} batches)\n"
        f"speedup:           {speedup:8.3f}x (acceptance bar: >= {SPEEDUP_BAR}x)\n"
        f"device busy:       {dyn_pt['device_busy_fraction']:.2f} of elapsed\n"
        "load sweep (offered -> rps, p50/p99 ms):\n"
        + "\n".join(
            f"  {pt['offered']:4d} -> {pt['throughput_rps']:9.0f} rps, "
            f"{pt['p50_latency_ms']:7.3f}/{pt['p99_latency_ms']:7.3f} ms"
            for pt in sweep
        )
        + f"\noverload (depth {OVERLOAD_DEPTH}): shed {over_pt['shed']} "
        f"({over_pt['shed_rate']:.0%}) via {over_pt['reject_reasons']}\n"
        f"json: {path}",
    )

    # The tentpole bar: coalescing at saturation doubles throughput.
    assert speedup >= SPEEDUP_BAR
    # No work was shed in the unbounded runs, and nothing was lost.
    assert not solo_rej and not dyn_rej
    assert solo_pt["completed"] == dyn_pt["completed"] == len(reqs)
    # Overload sheds with typed, counted rejections that add up.
    assert over_pt["shed"] > 0
    assert over_pt["reject_reasons"] == {"queue_full": over_pt["shed"]}
    assert len(over_rej) == over_pt["shed"]
    assert all(exc.reason == "queue_full" for exc in over_rej)
    assert over_pt["completed"] + over_pt["shed"] == len(reqs)
    # Batching strictly reduces dispatch count and keeps the device busier.
    assert dyn_pt["batches"] < solo_pt["batches"]
    assert dyn_pt["device_busy_fraction"] > solo_pt["device_busy_fraction"]
