"""Roofline bench: the paper's title as a measurement.

Places every five-step kernel on the 8800 GTX's roofline — all of them
left of the machine-balance ridge, all memory-bound, the multirow steps
realizing ~90% of their bandwidth roof.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.roofline import kernel_rooflines, ridge_intensity
from repro.gpu.specs import GEFORCE_8800_GTX
from repro.util.tables import Table


def test_roofline(benchmark, show):
    points = run_once(benchmark, lambda: kernel_rooflines(GEFORCE_8800_GTX))
    ridge = ridge_intensity(GEFORCE_8800_GTX)
    t = Table(
        ["Kernel", "Intensity (F/B)", "Roof (GFLOPS)", "Achieved", "Of roof",
         "Bound"],
        title=f"Roofline, 8800 GTX (ridge at {ridge:.1f} flops/byte)",
    )
    for p in points:
        t.add_row([
            p.kernel,
            f"{p.intensity:.2f}",
            f"{p.roof_gflops:.0f}",
            f"{p.achieved_gflops:.1f}",
            f"{p.roof_fraction * 100:.0f}%",
            p.bound,
        ])
    show("Roofline analysis", t.render())

    assert all(p.intensity < ridge for p in points)
    assert all(p.bound == "memory" for p in points)
    whole = points[-1]
    assert whole.intensity == pytest.approx(1.5, rel=0.01)
    assert whole.roof_fraction > 0.7
