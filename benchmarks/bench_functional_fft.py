"""Real wall-clock benchmarks of the functional FFT engines.

Unlike the table/figure benches (which exercise the *performance model*),
these measure the actual NumPy implementations with pytest-benchmark's
full statistics — the numbers a user of the host library cares about.
"""

import numpy as np
import pytest

from repro.core.five_step import FiveStepPlan
from repro.fft.codelets import fft16
from repro.fft.cooley_tukey import fft_pow2
from repro.fft.plan import PlanND
from repro.fft.stockham import stockham_fft


@pytest.fixture(scope="module")
def batch16():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((65536, 16)) + 1j * rng.standard_normal((65536, 16))
    ).astype(np.complex64)


@pytest.fixture(scope="module")
def line4096():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((256, 4096)) + 1j * rng.standard_normal((256, 4096))
    ).astype(np.complex64)


@pytest.fixture(scope="module")
def cube64():
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal((64, 64, 64)) + 1j * rng.standard_normal((64, 64, 64))
    ).astype(np.complex64)


def test_codelet_fft16_batched(benchmark, batch16):
    out = benchmark(fft16, batch16)
    assert out.shape == batch16.shape


def test_four_step_batched_4096(benchmark, line4096):
    out = benchmark(fft_pow2, line4096)
    assert out.shape == line4096.shape


def test_stockham_batched_4096(benchmark, line4096):
    out = benchmark(stockham_fft, line4096)
    assert out.shape == line4096.shape


def test_host_plan_3d_64(benchmark, cube64):
    plan = PlanND((64, 64, 64), precision="single")
    out = benchmark(plan.execute, cube64)
    assert out.shape == cube64.shape


def test_five_step_3d_64(benchmark, cube64):
    plan = FiveStepPlan((64, 64, 64))
    out = benchmark(plan.execute, cube64)
    # Spot-check correctness inside the benchmark loop's last result.
    ref = np.fft.fftn(cube64.astype(np.complex128))
    assert np.abs(out - ref).max() / np.abs(ref).max() < 1e-5


def test_numpy_reference_3d_64(benchmark, cube64):
    """numpy.fft baseline for context in the same units."""
    out = benchmark(np.fft.fftn, cube64)
    assert out.shape == cube64.shape
