"""What-if bench: the paper's "faster GPU interfaces" wish, quantified.

Section 5: "the ideal solution being facilitation of faster GPU
interfaces" — what would the 8800 GTX's 256^3 transform look like on
PCIe 2.0 or a (then-future) PCIe 3.0 link, and where does adding memory
bandwidth stop helping?
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.whatif import bandwidth_scaling_study, interconnect_study
from repro.util.tables import Table


def run():
    return dict(
        links=interconnect_study(),
        scaling=bandwidth_scaling_study(factors=(0.5, 1.0, 1.5, 2.0, 3.0)),
    )


def test_whatif_interconnect(benchmark, show):
    r = run_once(benchmark, run)

    t = Table(["PCIe link", "Total GFLOPS", "Transfer penalty"],
              title="8800 GTX, 256^3 incl. transfers, by interconnect")
    for p in r["links"]:
        t.add_row([p.link, f"{p.total_gflops:.1f}",
                   f"{p.transfer_penalty * 100:.0f}%"])
    show("What-if: faster GPU interfaces", t.render())

    t2 = Table(["Memory BW factor", "On-board GFLOPS"],
               title="8800 GTX, 256^3 on-board, by memory bandwidth")
    for f in sorted(r["scaling"]):
        t2.add_row([f"{f:.1f}x", f"{r['scaling'][f]:.1f}"])
    show("What-if: memory bandwidth scaling", t2.render())

    links = {p.link: p for p in r["links"]}
    # Gen 1.1 reproduces Table 10's 18 GFLOPS; each upgrade helps a lot.
    assert links["1.1 x16"].total_gflops == pytest.approx(18.0, rel=0.1)
    assert links["2.0 x16"].total_gflops > 1.3 * links["1.1 x16"].total_gflops
    assert links["3.0 x16"].total_gflops > 1.5 * links["1.1 x16"].total_gflops
    # Bandwidth-bound below 1x; compute-bound plateau past ~2x.
    assert r["scaling"][0.5] < 0.65 * r["scaling"][1.0]
    assert r["scaling"][3.0] < 1.1 * r["scaling"][2.0]
