"""Workspace-pooled zero-copy host path vs the seed allocate-per-step path.

The host execution engine's acceptance experiment: a seeded 64-transform
single-precision workload (64 x 64^3 entries — one 256^3 grid's worth of
points, the paper's largest in-core problem) runs through ``FFTServer``
three times on identical simulated hardware:

* **seed** — ``pooling=False``, ``n_workers=1``: every five-step stage
  allocates fresh intermediates, results are staged and stack-copied
  (the pre-workspace behavior, kept verbatim as the ``pooling=False``
  path);
* **pooled** — ``pooling=True``, ``n_workers=1``: all intermediates come
  from the per-plan :class:`~repro.core.workspace.Workspace` arena, the
  twiddle multiplies are fused into the transpose writes, the transform
  runs in place on the device buffer and downloads land directly in the
  caller's result block;
* **pooled+parallel** — ``pooling=True``, ``n_workers=4``: the pooled
  engines behind the server's dispatch worker pool (compute capped at
  the host's core count, so oversubscription never thrashes).

Acceptance: the pooled+parallel configuration must be >= 1.5x faster in
wall-clock than seed, with every spectrum bit-identical and a 100%
steady-state arena hit rate.  Results land in ``BENCH_hostpath.json``
with a ``quick`` section sized for the CI smoke gate::

    python benchmarks/bench_hostpath.py --quick --check-against BENCH_hostpath.json

re-runs the quick workload and fails (exit 1) when the measured speedups
regress below ``REGRESSION_TOLERANCE`` of the committed baseline —
comparing speedup *ratios*, not absolute times, so the gate is
self-normalizing across machines.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import tracemalloc
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # CLI: python benchmarks/bench_hostpath.py
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from repro.core.api import GpuFFT3D
from repro.core.workspace import Workspace
from repro.serve import CoalescePolicy, FFTRequest, FFTServer

SPEEDUP_BAR = 1.5
N_WORKERS = 4
MAX_BATCH = 4
#: CI gate: current quick-mode speedup must be >= committed * this.
REGRESSION_TOLERANCE = 0.8

#: 64 x 64^3 complex64 = exactly one 256^3 grid of points.
FULL = {"shape": (64, 64, 64), "entries": 64, "rounds": 5}
QUICK = {"shape": (64, 64, 64), "entries": 16, "rounds": 4}


def _workload(shape, entries):
    rng = np.random.default_rng(20080815)
    return [
        (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
            np.complex64
        )
        for _ in range(entries)
    ]


def _round(srv, xs):
    """One full pass of the workload through ``srv``; wall + spectra."""
    gc.collect()  # keep prior rounds' garbage out of the timing
    futs = [srv.submit(FFTRequest(x)) for x in xs]
    t0 = time.perf_counter()
    srv.run_pending()
    wall = time.perf_counter() - t0
    outs = [f.result(timeout=120) for f in futs]
    return wall, outs


#: (payload key, pooling, n_workers) for the three measured configurations.
_CONFIGS = (
    ("seed", False, 1),
    ("pooled", True, 1),
    ("pooled_parallel", True, N_WORKERS),
)


def _measure(xs, rounds):
    """Best-of-``rounds`` wall seconds per configuration, interleaved.

    All three servers stay alive and the timed rounds alternate between
    them (seed, pooled, parallel, seed, ...), so transient host
    interference — CPU steal on a shared box — lands on at most one
    round of each configuration and best-of-N discards it; back-to-back
    per-config runs would let one noisy stretch corrupt a whole
    configuration.  An untimed warm-up round per server populates
    engines, arenas and caches first (steady state is what the tentpole
    optimizes) and doubles as the bit-identity oracle against seed.
    """
    servers = {
        name: FFTServer(
            start=False,
            pooling=pooling,
            n_workers=n_workers,
            max_depth=4096,
            coalesce=CoalescePolicy(max_batch=MAX_BATCH, max_wait_s=0.0),
        )
        for name, pooling, n_workers in _CONFIGS
    }
    best: dict[str, float] = {}
    identical = True
    try:
        ref = None
        for name, srv in servers.items():  # warm-up + identity check
            _, outs = _round(srv, xs)
            if ref is None:
                ref = outs
            else:
                identical = identical and all(
                    np.array_equal(a, b) for a, b in zip(ref, outs)
                )
            del outs
        for _ in range(rounds):
            for name, srv in servers.items():
                wall, outs = _round(srv, xs)
                del outs
                best[name] = min(best.get(name, wall), wall)
    finally:
        for srv in servers.values():
            srv.close()
    return best, identical


def _steady_state(shape):
    """Arena behavior over 20 pooled executions after warm-up."""
    x = _workload(shape, 1)[0]
    plan = GpuFFT3D(shape, precision="single", pooling=True)
    try:
        plan.forward(x)
        before = plan.workspace.stats
        gc.collect()
        tracemalloc.start()
        base = tracemalloc.take_snapshot()
        for _ in range(20):
            plan.forward(x)
        gc.collect()
        growth = tracemalloc.take_snapshot().compare_to(base, "lineno")
        tracemalloc.stop()
        after = plan.workspace.stats
    finally:
        plan.close()
    return {
        "miss_delta": after.misses - before.misses,
        "hits_delta": after.hits - before.hits,
        "live_buffers": after.live_buffers,
        "arena_bytes": after.bytes_allocated,
        "net_traced_bytes": sum(
            d.size_diff for d in growth if d.size_diff > 0
        ),
    }


def _pure_plan_steady_state(shape):
    """Per-transform core time, seed vs pooled, outside the server.

    Measured with the shared interleaved best-of-N harness
    (``benchmarks/harness.py``) so the numbers sit on the same footing
    as ``BENCH_jit.json``'s plan-core section.
    """
    from benchmarks.harness import best_of_interleaved

    from repro.core.five_step import FiveStepPlan

    x = _workload(shape, 1)[0]
    plan = FiveStepPlan(shape, precision="single")
    ws = Workspace()
    out = np.empty(shape, np.complex64)
    best = best_of_interleaved(
        {
            "seed": lambda: plan.execute(x),
            "pooled": lambda: plan.execute(x, workspace=ws, out=out),
        },
        rounds=4,
        reps=4,
    )
    return {
        "seed_ms": best["seed"] * 1e3,
        "pooled_ms": best["pooled"] * 1e3,
        "core_speedup": best["seed"] / best["pooled"],
    }


def _interpreter_backend_split(shape):
    """Interpreter-vs-backend decomposition of one pooled transform.

    Identical harness and definitions to ``BENCH_jit.json``'s
    ``time_split`` section (``benchmarks/harness.py``): ``backend`` is
    the bare plan execute, ``total`` the full ``GpuFFT3D.forward``, and
    the difference is interpreter-side dispatch a faster numeric core
    can never remove.
    """
    from benchmarks.harness import time_split

    x = _workload(shape, 1)[0]
    engine = GpuFFT3D(shape, precision="single", pooling=True)
    try:
        plan = engine._plan
        ws = engine.workspace
        out = np.empty(shape, np.complex64)
        return {
            "numpy_pooled": time_split(
                lambda: engine.forward(x),
                lambda: plan.execute(x, workspace=ws, out=out),
                rounds=4,
                reps=4,
            )
        }
    finally:
        engine.close()


def run_section(cfg) -> dict:
    """Run seed / pooled / pooled+parallel over one workload size."""
    shape, entries, rounds = cfg["shape"], cfg["entries"], cfg["rounds"]
    xs = _workload(shape, entries)

    best, identical = _measure(xs, rounds)
    seed_s = best["seed"]
    pooled_s = best["pooled"]
    par_s = best["pooled_parallel"]

    return {
        "shape": list(shape),
        "entries": entries,
        "total_points": entries * int(np.prod(shape)),
        "seed": {
            "wall_seconds": seed_s,
            "per_entry_ms": seed_s / entries * 1e3,
        },
        "pooled": {
            "wall_seconds": pooled_s,
            "per_entry_ms": pooled_s / entries * 1e3,
        },
        "pooled_parallel": {
            "wall_seconds": par_s,
            "per_entry_ms": par_s / entries * 1e3,
            "n_workers": N_WORKERS,
        },
        "speedup_pooled": seed_s / pooled_s,
        "speedup_parallel": seed_s / par_s,
        "bit_identical": identical,
    }


def build_payload(quick_only: bool = False) -> dict:
    payload = {
        "speedup_bar": SPEEDUP_BAR,
        "n_workers": N_WORKERS,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "quick": run_section(QUICK),
    }
    if not quick_only:
        payload["full"] = run_section(FULL)
        payload["speedup"] = payload["full"]["speedup_parallel"]
        payload["steady_state"] = _steady_state(FULL["shape"])
        payload["plan_core"] = _pure_plan_steady_state(FULL["shape"])
        payload["time_split"] = _interpreter_backend_split(FULL["shape"])
    return payload


def _fmt(section, name):
    return (
        f"{name}: {section['entries']} x {section['shape']} "
        f"({section['total_points'] / 1e6:.1f}M points)\n"
        f"  seed:            {section['seed']['wall_seconds'] * 1e3:8.1f} ms\n"
        f"  pooled:          {section['pooled']['wall_seconds'] * 1e3:8.1f} ms "
        f"({section['speedup_pooled']:.2f}x)\n"
        f"  pooled+parallel: "
        f"{section['pooled_parallel']['wall_seconds'] * 1e3:8.1f} ms "
        f"({section['speedup_parallel']:.2f}x, "
        f"n_workers={section['pooled_parallel']['n_workers']})\n"
        f"  bit-identical:   {section['bit_identical']}"
    )


def test_hostpath_pooled_speedup(benchmark, show):
    """Pooled + parallel host path: >= 1.5x over seed, bit-identical."""
    from benchmarks.conftest import run_once, write_bench_json

    payload = run_once(benchmark, build_payload)
    path = write_bench_json("hostpath", payload)

    full, quick = payload["full"], payload["quick"]
    steady = payload["steady_state"]
    show(
        "Workspace-pooled host path vs seed",
        _fmt(full, "full")
        + "\n"
        + _fmt(quick, "quick")
        + f"\nsteady state: {steady['miss_delta']} arena misses / "
        f"{steady['hits_delta']} hits over 20 runs, "
        f"{steady['arena_bytes'] / 1e6:.1f} MB arena\n"
        f"plan core: {payload['plan_core']['seed_ms']:.2f} -> "
        f"{payload['plan_core']['pooled_ms']:.2f} ms "
        f"({payload['plan_core']['core_speedup']:.2f}x)\n"
        f"json: {path}",
    )

    # The tentpole bar: pooled + parallel dispatch >= 1.5x over seed.
    assert full["speedup_parallel"] >= SPEEDUP_BAR
    assert full["speedup_pooled"] >= SPEEDUP_BAR
    # Pure optimization: every spectrum identical to the seed path.
    assert full["bit_identical"] and quick["bit_identical"]
    # Zero steady-state allocation: a warm arena never misses, and no
    # per-execution numpy allocation survives the loop.
    assert steady["miss_delta"] == 0
    assert steady["live_buffers"] == 0
    assert steady["net_traced_bytes"] < 1 << 20


def _check_against(payload: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for metric in ("speedup_pooled", "speedup_parallel"):
        committed = baseline["quick"][metric]
        current = payload["quick"][metric]
        # Cap the reference at the acceptance bar so a lucky committed
        # run can't ratchet the floor above what the gate is meant to
        # protect: "still roughly as fast as the seed-vs-pooled contract
        # promises", not "as fast as the best run ever recorded".
        floor = min(committed, SPEEDUP_BAR) * REGRESSION_TOLERANCE
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"{metric}: current {current:.2f}x vs committed {committed:.2f}x "
            f"(floor {floor:.2f}x) -> {status}"
        )
        if current < floor:
            failures.append(metric)
    if not payload["quick"]["bit_identical"]:
        print("bit_identical: False -> REGRESSION")
        failures.append("bit_identical")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the small CI-smoke workload (no full section)",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        metavar="JSON",
        help="compare quick-mode speedups against a committed "
        "BENCH_hostpath.json; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    payload = build_payload(quick_only=args.quick)
    print(_fmt(payload["quick"], "quick"))
    if "full" in payload:
        print(_fmt(payload["full"], "full"))

    if args.check_against is not None:
        return _check_against(payload, args.check_against)

    out = _ROOT / "BENCH_hostpath.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
