"""Ablation: twiddle-factor storage options for the step-5 kernel.

Section 3.2 lists four options and picks texture for step 5.  This bench
prices each option into the step-5 kernel (extra registers -> occupancy;
extra issue slots -> compute time) and checks the paper's choice wins.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.core.kernels import shared_x_step_spec
from repro.core.twiddle_options import TWIDDLE_OPTIONS, TwiddleOption, twiddle_cost
from repro.gpu.isa import InstructionMix
from repro.gpu.memsystem import MemorySystem
from repro.gpu.specs import GEFORCE_8800_GTS
from repro.gpu.timing import time_kernel
from repro.util.tables import Table

#: Twiddle uses per 256-point transform (one per butterfly output round).
N_USES = 256.0
#: Distinct values a thread would have to keep live for option (1).
N_VALUES_PER_THREAD = 12


def run():
    device = GEFORCE_8800_GTS
    ms = MemorySystem(device)
    base = shared_x_step_spec(device, 256, 65536, twiddles_via_texture=False)
    times = {}
    for option in TWIDDLE_OPTIONS:
        cost = twiddle_cost(option, device)
        mix = InstructionMix(
            flops=base.mix.flops,
            fma_fraction=base.mix.fma_fraction,
            shared_ops=base.mix.shared_ops,
            other_ops=base.mix.other_ops + cost.extra_issue(N_USES),
            overhead_fraction=base.mix.overhead_fraction,
        )
        spec = replace(
            base,
            name=f"step5-twiddle-{option.value}",
            mix=mix,
            regs_per_thread=base.regs_per_thread
            + cost.extra_registers(N_VALUES_PER_THREAD),
        )
        times[option] = time_kernel(device, spec, ms).seconds
    return times


def test_twiddle_option_ablation(benchmark, show):
    times = run_once(benchmark, run)
    t = Table(["Option", "Step-5 time (ms)"],
              title="Ablation: twiddle storage for step 5 (8800 GTS)")
    for option, s in times.items():
        t.add_row([option.value, f"{s * 1e3:.2f}"])
    show("Twiddle-storage ablation", t.render())
    # The paper's pick: texture is the best register-free option and not
    # slower than any alternative for this kernel.
    assert times[TwiddleOption.TEXTURE] <= min(times.values()) * 1.001
    # Recomputing with SFU instructions costs measurably more.
    assert times[TwiddleOption.COMPUTE] > times[TwiddleOption.TEXTURE]
    assert times[TwiddleOption.CONSTANT] > times[TwiddleOption.TEXTURE]
