"""Calibration-sensitivity bench: the model is mechanisms, not curve fit.

Perturbs every calibrated DRAM constant and prints how the headline
256^3 GFLOPS and the single-stream anchor respond.
"""

from benchmarks.conftest import run_once
from repro.harness.sensitivity import sensitivity_study
from repro.util.tables import Table


def test_sensitivity(benchmark, show):
    rows = run_once(benchmark, sensitivity_study)
    t = Table(
        ["Constant", "Range", "GFLOPS (lo/nom/hi)", "Swing",
         "Anchor GB/s (lo/hi)"],
        title="Calibrated-constant sensitivity (8800 GTX, 256^3)",
    )
    for r in rows:
        lo, nom, hi = r.gflops
        t.add_row([
            r.field,
            f"[{r.low_value:g}, {r.high_value:g}]",
            f"{lo:.1f} / {nom:.1f} / {hi:.1f}",
            f"{r.gflops_swing * 100:.0f}%",
            f"{r.anchor_single[0]:.1f} / {r.anchor_single[2]:.1f}",
        ])
    show("Sensitivity study", t.render())

    for r in rows:
        assert r.gflops_swing < 0.15, r.field
