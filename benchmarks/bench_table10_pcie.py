"""Regenerate Table 10: 256^3 including PCIe transfers."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import paper_data
from repro.harness.experiments import run_experiment


def test_table10(benchmark, show):
    result = run_once(benchmark, lambda: run_experiment("table10"))
    show("Table 10: 256^3 with host<->device data transfer", result.text)
    for name, row in result.rows.items():
        paper = paper_data.TABLE10[name]
        assert row["total_ms"] == pytest.approx(paper["total"][0], rel=0.10), name
        assert row["h2d_ms"] == pytest.approx(paper["h2d"][0], rel=0.10), name
        # Transfers dominate on-board compute everywhere.
        assert row["h2d_ms"] + row["d2h_ms"] > row["fft_ms"], name
    # The ranking inversion: best on-board card is worst overall.
    assert result.rows["8800 GTX"]["fft_ms"] == min(
        r["fft_ms"] for r in result.rows.values()
    )
    assert result.rows["8800 GTX"]["total_ms"] == max(
        r["total_ms"] for r in result.rows.values()
    )
