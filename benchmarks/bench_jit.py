"""JIT-compiled hot path vs the pooled NumPy reference.

The tentpole acceptance experiment for the :mod:`repro.jit` backend: the
same seeded 64 x 64^3 single-precision workload the host-path benchmark
uses (``bench_hostpath.py``) runs through three lenses:

* **per-kernel microbenches** — each of the five compiled pipeline
  calls timed alone on the 64^3 geometry, so a regression is
  attributable to one kernel rather than "the transform got slower";
* **plan core** — the bare five-step execute, seed NumPy vs pooled
  NumPy vs compiled, interleaved best-of-N (``benchmarks/harness.py``,
  the same discipline bench_hostpath uses).  The headline gate lives
  here: compiled >= 3x over the *pooled* NumPy path;
* **serve mix** — the full ``FFTServer`` workload, pooled NumPy vs
  compiled, plus compiled ``n_workers=1`` vs ``n_workers=4``.  The
  parallel gate (>= 2x) only applies on hosts with >= 4 cores — the
  GIL-released kernels cannot scale on a single-core container, and the
  payload records ``cpu_count`` so a reader knows which regime produced
  the numbers.

Equivalence is checked alongside every timing: cjit must match NumPy
bit-for-bit (its complex multiply is probed against the hardware),
numba within the documented 4-ulp bound (DESIGN.md §18).

CI smoke::

    python benchmarks/bench_jit.py --quick --check-against BENCH_jit.json

re-runs the quick workload and fails (exit 1) when the measured
core-speedup ratio regresses below ``REGRESSION_TOLERANCE`` (80%) of
the committed baseline — ratios, not absolute times, so the gate is
self-normalizing across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # CLI: python benchmarks/bench_jit.py
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from benchmarks.harness import best_of_interleaved, sample_seconds, time_split
from repro import jit
from repro.core.five_step import FiveStepPlan, split_axis
from repro.core.workspace import Workspace
from repro.serve import CoalescePolicy, FFTRequest, FFTServer

#: Headline gate: compiled plan core vs the pooled NumPy plan core.
CORE_SPEEDUP_BAR = 3.0
#: Parallel gate: FFTServer(n_workers=4) vs n_workers=1, compiled.
PARALLEL_BAR = 2.0
PARALLEL_WORKERS = 4
#: CI gate: current quick-mode core speedup must be >= committed * this.
REGRESSION_TOLERANCE = 0.8
#: Agreement bound for the naive-cmul (numba) kernels, in ulps at the
#: spectrum peak (DESIGN.md §18).
ULP_BOUND = 4.0

FULL = {"shape": (64, 64, 64), "entries": 64, "rounds": 5, "core_reps": 4}
QUICK = {"shape": (64, 64, 64), "entries": 16, "rounds": 4, "core_reps": 2}


def _workload(shape, entries):
    rng = np.random.default_rng(20080815)
    return [
        (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
            np.complex64
        )
        for _ in range(entries)
    ]


def _equivalent(jitted: np.ndarray, ref: np.ndarray, backend: str) -> bool:
    """The backend contract: bit-identity (cjit) or <= 4 ulp (numba)."""
    a, b = jitted.view(np.float32), ref.view(np.float32)
    if backend == "cjit":
        return bool(np.array_equal(a, b))
    scale = np.spacing(np.float32(np.abs(b).max() or 1.0))
    return bool(np.abs(a - b).max() / scale <= ULP_BOUND)


def _compiled_for(shape, backend):
    """A warm CompiledFiveStep + work buffers for kernel microbenches."""
    rz1, rz2 = split_axis(shape[0])
    ry1, ry2 = split_axis(shape[1])
    compiled, _ = jit.compile_plan(
        backend, shape, "single", rz1, rz2, ry1, ry2
    )
    return compiled, (rz2, rz1, ry2, ry1)


def _kernel_microbench(shape, backend, reps=20) -> dict:
    """Best wall ms of each pipeline call alone, on the full grid."""
    compiled, (a, b, c, d) = _compiled_for(shape, backend)
    nx = shape[2]
    x = _workload(shape, 1)[0]
    out = np.empty_like(x)
    work = np.empty_like(x)
    xf = x.reshape(-1).view(np.float32)
    wf = work.reshape(-1).view(np.float32)
    of = out.reshape(-1).view(np.float32)
    k = compiled._kernels
    sgn = np.float32(1.0)
    ctab = compiled._ctab
    acc = np.empty(2 * nx, np.float32)
    rows = a * b * c * d

    def s5():
        if compiled._needs_scratch:
            k["step5"][nx](of, compiled._w5, ctab, acc, rows, sgn)
        else:
            k["step5"][nx](of, compiled._w5, ctab, rows, sgn)

    calls = {
        f"mr_a_{a} (Z half 1)": lambda: k["multirow_a"][a](
            xf, wf, compiled._wz, ctab, b, c, d, nx, sgn
        ),
        f"mr_b_{b} (Z half 2)": lambda: k["multirow_b"][b](
            wf, of, ctab, c, d, a, nx, sgn
        ),
        f"mr_a_{c} (Y half 1)": lambda: k["multirow_a"][c](
            of, wf, compiled._wy, ctab, d, b, a, nx, sgn
        ),
        f"mr_b_{d} (Y half 2)": lambda: k["multirow_b"][d](
            wf, of, ctab, b, a, c, nx, sgn
        ),
        f"s5_{nx} (X four-step)": s5,
    }
    best = {}
    for name, fn in calls.items():
        fn()  # warm
        samples = [sample_seconds(fn, 1) for _ in range(reps)]
        best[name] = min(samples) * 1e3
    return best


def _plan_core(shape, backend, rounds, reps) -> dict:
    """Seed NumPy vs pooled NumPy vs compiled, interleaved best-of-N."""
    x = _workload(shape, 1)[0]
    plan_np = FiveStepPlan(shape, precision="single")
    plan_jit = FiveStepPlan(shape, precision="single", backend=backend)
    plan_jit.ensure_compiled()
    ws = Workspace()
    ws_jit = Workspace()
    out = np.empty_like(x)
    out_jit = np.empty_like(x)

    samplers = {
        "numpy_seed": lambda: plan_np.execute(x),
        "numpy_pooled": lambda: plan_np.execute(x, workspace=ws, out=out),
        "jit": lambda: plan_jit.execute(x, workspace=ws_jit, out=out_jit),
    }
    best = best_of_interleaved(samplers, rounds, reps)
    equivalent = _equivalent(
        plan_jit.execute(x), plan_np.execute(x), plan_jit.backend
    )
    return {
        "backend": plan_jit.backend,
        "numpy_seed_ms": best["numpy_seed"] * 1e3,
        "numpy_pooled_ms": best["numpy_pooled"] * 1e3,
        "jit_ms": best["jit"] * 1e3,
        "speedup_vs_seed": best["numpy_seed"] / best["jit"],
        "speedup_vs_pooled": best["numpy_pooled"] / best["jit"],
        "equivalent": equivalent,
    }


def _time_splits(shape, backend, rounds, reps) -> dict:
    """Interpreter-vs-backend split, pooled NumPy and compiled.

    Same harness and definitions as ``bench_hostpath.py``'s split, so
    the two JSON files are directly comparable.
    """
    from repro.core.api import GpuFFT3D

    x = _workload(shape, 1)[0]
    splits = {}
    for name, be in (("numpy_pooled", "numpy"), ("jit", backend)):
        engine = GpuFFT3D(shape, precision="single", backend=be)
        try:
            plan = engine._plan
            plan.ensure_compiled()
            ws = engine.workspace
            out = np.empty_like(x)
            splits[name] = time_split(
                lambda: engine.forward(x),
                lambda: plan.execute(x, workspace=ws, out=out),
                rounds=rounds,
                reps=reps,
            )
        finally:
            engine.close()
    return splits


def _serve(backend, pooling, n_workers, xs, rounds):
    """Best-of-N server wall seconds + last round's spectra."""
    srv = FFTServer(
        start=False,
        pooling=pooling,
        n_workers=n_workers,
        backend=backend,
        max_depth=4096,
        coalesce=CoalescePolicy(max_batch=4, max_wait_s=0.0),
    )
    try:
        outs = None
        best = None
        for r in range(rounds + 1):  # +1 untimed warm-up round
            futs = [srv.submit(FFTRequest(x)) for x in xs]
            t0 = time.perf_counter()
            srv.run_pending()
            wall = time.perf_counter() - t0
            outs = [f.result(timeout=120) for f in futs]
            if r > 0:
                best = wall if best is None else min(best, wall)
        return best, outs
    finally:
        srv.close()


def _serve_mix(shape, entries, backend, rounds) -> dict:
    """The full serve-mix: pooled NumPy vs compiled, then 1 vs 4 workers."""
    xs = _workload(shape, entries)
    np_wall, np_outs = _serve("numpy", True, 1, xs, rounds)
    jit_wall, jit_outs = _serve(backend, True, 1, xs, rounds)
    par_wall, par_outs = _serve(backend, True, PARALLEL_WORKERS, xs, rounds)
    equivalent = all(
        _equivalent(j, r, backend) for j, r in zip(jit_outs, np_outs)
    ) and all(_equivalent(p, r, backend) for p, r in zip(par_outs, np_outs))
    return {
        "entries": entries,
        "numpy_pooled_wall_s": np_wall,
        "jit_wall_s": jit_wall,
        "jit_parallel_wall_s": par_wall,
        "n_workers": PARALLEL_WORKERS,
        "speedup_vs_pooled": np_wall / jit_wall,
        "parallel_speedup": jit_wall / par_wall,
        "equivalent": equivalent,
    }


def run_section(cfg, backend) -> dict:
    shape = cfg["shape"]
    section = {
        "shape": list(shape),
        "plan_core": _plan_core(
            shape, backend, cfg["rounds"], cfg["core_reps"]
        ),
        "serve_mix": _serve_mix(shape, cfg["entries"], backend, 2),
    }
    return section


def build_payload(quick_only: bool = False) -> dict:
    resolved = jit.resolve_backend("auto")
    payload = {
        "backends": {
            "available": list(jit.available_backends()),
            "resolved": resolved,
        },
        "cpu_count": os.cpu_count(),
        "core_speedup_bar": CORE_SPEEDUP_BAR,
        "parallel_bar": PARALLEL_BAR,
        "parallel_gate_applies": (os.cpu_count() or 1) >= PARALLEL_WORKERS,
        "regression_tolerance": REGRESSION_TOLERANCE,
    }
    if resolved == "cjit":
        from repro.jit import cc

        payload["backends"]["cmul_modes"] = cc.cmul_modes()
    if resolved == "numpy":
        payload["note"] = (
            "no compiled backend on this machine; speedup sections omitted"
        )
        return payload
    payload["quick"] = run_section(QUICK, resolved)
    if not quick_only:
        payload["full"] = run_section(FULL, resolved)
        payload["full"]["kernels_ms"] = _kernel_microbench(
            FULL["shape"], resolved
        )
        payload["full"]["time_split"] = _time_splits(
            FULL["shape"], resolved, FULL["rounds"], FULL["core_reps"]
        )
    return payload


def _fmt(payload: dict) -> str:
    lines = [
        f"backends: {payload['backends']['available']} "
        f"-> {payload['backends']['resolved']}, "
        f"cpu_count={payload['cpu_count']}"
    ]
    if "note" in payload:
        lines.append(payload["note"])
        return "\n".join(lines)
    for name in ("quick", "full"):
        section = payload.get(name)
        if section is None:
            continue
        core, mix = section["plan_core"], section["serve_mix"]
        lines += [
            f"{name}: {section['shape']}",
            f"  plan core: seed {core['numpy_seed_ms']:.2f} ms, "
            f"pooled {core['numpy_pooled_ms']:.2f} ms, "
            f"jit {core['jit_ms']:.2f} ms "
            f"({core['speedup_vs_pooled']:.2f}x vs pooled)",
            f"  serve mix: {mix['entries']} entries, "
            f"numpy {mix['numpy_pooled_wall_s'] * 1e3:.1f} ms, "
            f"jit {mix['jit_wall_s'] * 1e3:.1f} ms "
            f"({mix['speedup_vs_pooled']:.2f}x), "
            f"{mix['n_workers']} workers "
            f"{mix['jit_parallel_wall_s'] * 1e3:.1f} ms "
            f"({mix['parallel_speedup']:.2f}x)",
            f"  equivalent: core={core['equivalent']} "
            f"mix={mix['equivalent']}",
        ]
        if "kernels_ms" in section:
            for kname, ms in section["kernels_ms"].items():
                lines.append(f"    {kname}: {ms:.3f} ms")
        if "time_split" in section:
            for sname, split in section["time_split"].items():
                lines.append(
                    f"  split {sname}: total {split['total_ms']:.2f} ms = "
                    f"backend {split['backend_ms']:.2f} + "
                    f"interp {split['interpreter_ms']:.2f} "
                    f"({split['interpreter_fraction']:.0%})"
                )
    return "\n".join(lines)


def test_jit_speedup(benchmark, show):
    """Compiled hot path: >= 3x over pooled NumPy at the plan core."""
    import pytest

    from benchmarks.conftest import run_once, write_bench_json

    if jit.resolve_backend("auto") == "numpy":
        pytest.skip("no compiled backend available on this machine")

    payload = run_once(benchmark, build_payload)
    path = write_bench_json("jit", payload)
    show("JIT hot path vs pooled NumPy", _fmt(payload) + f"\njson: {path}")

    full = payload["full"]
    assert full["plan_core"]["speedup_vs_pooled"] >= CORE_SPEEDUP_BAR
    assert full["plan_core"]["equivalent"]
    assert full["serve_mix"]["equivalent"]
    if payload["parallel_gate_applies"]:
        assert full["serve_mix"]["parallel_speedup"] >= PARALLEL_BAR


def _check_against(payload: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    if "quick" not in payload or "quick" not in baseline:
        print("no compiled backend in payload or baseline; nothing to gate")
        return 0
    failures = []
    committed = baseline["quick"]["plan_core"]["speedup_vs_pooled"]
    current = payload["quick"]["plan_core"]["speedup_vs_pooled"]
    # Cap the reference at the acceptance bar so a lucky committed run
    # can't ratchet the floor above the contract.
    floor = min(committed, CORE_SPEEDUP_BAR) * REGRESSION_TOLERANCE
    status = "ok" if current >= floor else "REGRESSION"
    print(
        f"plan_core.speedup_vs_pooled: current {current:.2f}x vs committed "
        f"{committed:.2f}x (floor {floor:.2f}x) -> {status}"
    )
    if current < floor:
        failures.append("speedup_vs_pooled")
    if not payload["quick"]["plan_core"]["equivalent"]:
        print("plan_core.equivalent: False -> REGRESSION")
        failures.append("equivalent")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the small CI-smoke workload (no full section)",
    )
    parser.add_argument(
        "--check-against",
        type=Path,
        metavar="JSON",
        help="compare quick-mode speedup against a committed "
        "BENCH_jit.json; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    payload = build_payload(quick_only=args.quick)
    print(_fmt(payload))

    if args.check_against is not None:
        return _check_against(payload, args.check_against)

    out = _ROOT / "BENCH_jit.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
