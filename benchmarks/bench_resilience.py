"""Cost of resilience: overhead, throughput vs fault rate, recovery latency.

Three questions the fault-injection layer must answer quantitatively:

1. What does the machinery cost when nothing goes wrong?  (Answer: no
   simulated time at all — checksums and energy checks are host-side.)
2. How does effective throughput degrade as the injected fault rate
   rises, with retries, backoff and re-sent transfers all charged to the
   simulated clock?
3. How fast does the *serving* layer recover from a worker loss — the
   wall-clock gap between a card dying mid-batch and the first
   re-queued request completing on a survivor?  Emitted to
   ``BENCH_resilience.json`` for CI consumption.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, write_bench_json
from repro.core.api import GpuFFT3D
from repro.gpu.faults import FaultInjector, FaultSpec
from repro.serve import CoalescePolicy, FFTRequest, FFTServer
from repro.util.units import flops_3d_fft

N = 32
RATES = (0.0, 0.02, 0.05, 0.10, 0.20)


def _input():
    rng = np.random.default_rng(12345)
    return (rng.standard_normal((N, N, N)) + 0j).astype(np.complex64)


def _faulty_specs(rate):
    return [
        FaultSpec("transfer-fail", rate=rate),
        FaultSpec("transfer-corrupt", rate=rate),
        FaultSpec("launch-fail", rate=rate),
    ]


def test_zero_fault_overhead(benchmark, show):
    """Resilient plan vs bare plan with no injector: identical timelines."""
    x = _input()

    def run():
        bare = GpuFFT3D((N, N, N))
        bare.forward(x)
        guarded = GpuFFT3D((N, N, N), verify=True)
        guarded.forward(x)
        return bare.simulator.elapsed, guarded.simulator.elapsed

    base_s, guarded_s = run_once(benchmark, run)
    overhead = guarded_s / base_s - 1.0
    show(
        "Resilience overhead at zero fault rate",
        f"bare:    {base_s * 1e3:8.3f} ms\n"
        f"guarded: {guarded_s * 1e3:8.3f} ms\n"
        f"overhead: {overhead * 100:+.2f}% (acceptance bar: < 5%)",
    )
    assert overhead < 0.05


def test_throughput_vs_fault_rate(benchmark, show):
    """Effective GFLOPS as transfer/launch fault rates rise."""
    x = _input()
    flops = flops_3d_fft(N, N, N)
    ref = np.fft.fftn(x.astype(np.complex128))

    def sweep():
        rows = []
        for rate in RATES:
            inj = FaultInjector(_faulty_specs(rate), seed=2008) if rate else None
            plan = GpuFFT3D((N, N, N), fault_injector=inj)
            out = plan.forward(x)
            assert np.abs(out - ref).max() / np.abs(ref).max() < 1e-5
            report = plan.resilience_report()
            rows.append(
                (
                    rate,
                    plan.simulator.elapsed,
                    flops / plan.simulator.elapsed / 1e9,
                    report.total_retries,
                    report.backoff_seconds + report.fault_seconds,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        f"{'rate':>6} {'time (ms)':>10} {'GFLOPS':>8} {'retries':>8} {'lost (ms)':>10}"
    ]
    for rate, secs, gflops, retries, lost in rows:
        lines.append(
            f"{rate:6.2f} {secs * 1e3:10.3f} {gflops:8.2f} "
            f"{retries:8d} {lost * 1e3:10.3f}"
        )
    show(f"Throughput vs injected fault rate ({N}^3, forward)", "\n".join(lines))
    # Correct at every rate (asserted in the sweep); monotone cost overall:
    # the heaviest fault rate must be strictly slower than fault-free.
    assert rows[-1][1] > rows[0][1]
    assert rows[0][3] == 0 and rows[-1][3] > 0


def test_serve_recovery_latency(benchmark, show):
    """Worker loss → first re-queued completion, through the full server.

    A four-worker serial-dispatch server takes a 64-request stream while
    worker 1 carries a deterministic mid-stream device loss.  The health
    layer ejects the worker and re-queues its in-flight batch; the
    recovery latency is the wall-clock gap between the ejection
    transition and the first re-queued request resolving on a survivor.
    """
    rng = np.random.default_rng(4242)
    xs = [
        (rng.standard_normal((N, N, N)) + 1j * rng.standard_normal((N, N, N)))
        .astype(np.complex64)
        for _ in range(64)
    ]

    def run():
        injectors = [FaultInjector([], seed=i) for i in range(4)]
        injectors[1] = FaultInjector(
            [FaultSpec("device-lost", at_ops=(12,), category="launch")],
            seed=21,
        )
        futs = []
        with FFTServer(
            start=False,
            n_workers=4,
            serial_dispatch=True,
            fault_injector=injectors,
            coalesce=CoalescePolicy(max_batch=4, max_wait_s=0.0),
            name="bench-resil",
        ) as srv:
            for i, x in enumerate(xs):
                futs.append(srv.submit(FFTRequest(x)))
                if (i + 1) % 8 == 0:
                    srv.run_pending()
            srv.drain()
            losses = [
                t
                for t in srv.health.transitions
                if t.reason == "DeviceLostError"
            ]
            stats = srv.stats()
        assert losses, "the injected device loss never fired"
        recovered = sorted(
            (
                f
                for f in futs
                if f.requeues > 0 and f.done() and f.exception() is None
            ),
            key=lambda f: f.finish_wall_s,
        )
        assert recovered, "no re-queued request completed"
        assert all(f.done() for f in futs)
        return {
            "recovery_latency_s": recovered[0].finish_wall_s - losses[0].wall_s,
            "requeued_requests": stats.requeued,
            "requeued_completed": len(recovered),
            "completed": stats.completed,
            "device_losses": len(losses),
        }

    result = run_once(benchmark, run)
    write_bench_json(
        "resilience",
        {
            "experiment": "serve worker-loss recovery",
            "n_workers": 4,
            "requests": len(xs),
            "shape": [N, N, N],
            "recovery_latency_ms": round(result["recovery_latency_s"] * 1e3, 3),
            "requeued_requests": result["requeued_requests"],
            "requeued_completed": result["requeued_completed"],
            "completed": result["completed"],
            "device_losses": result["device_losses"],
        },
    )
    show(
        "Serve-layer recovery latency (worker loss → first re-queued completion)",
        f"device losses:        {result['device_losses']}\n"
        f"requests re-queued:   {result['requeued_requests']}\n"
        f"re-queued completed:  {result['requeued_completed']}\n"
        f"recovery latency:     {result['recovery_latency_s'] * 1e3:.3f} ms (wall)\n"
        f"completed overall:    {result['completed']}/{len(xs)}",
    )
    assert result["recovery_latency_s"] >= 0.0
    assert result["completed"] == len(xs)
