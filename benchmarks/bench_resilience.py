"""Cost of resilience: zero-fault overhead and throughput vs fault rate.

Two questions the fault-injection layer must answer quantitatively:

1. What does the machinery cost when nothing goes wrong?  (Answer: no
   simulated time at all — checksums and energy checks are host-side.)
2. How does effective throughput degrade as the injected fault rate
   rises, with retries, backoff and re-sent transfers all charged to the
   simulated clock?
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.api import GpuFFT3D
from repro.gpu.faults import FaultInjector, FaultSpec
from repro.util.units import flops_3d_fft

N = 32
RATES = (0.0, 0.02, 0.05, 0.10, 0.20)


def _input():
    rng = np.random.default_rng(12345)
    return (rng.standard_normal((N, N, N)) + 0j).astype(np.complex64)


def _faulty_specs(rate):
    return [
        FaultSpec("transfer-fail", rate=rate),
        FaultSpec("transfer-corrupt", rate=rate),
        FaultSpec("launch-fail", rate=rate),
    ]


def test_zero_fault_overhead(benchmark, show):
    """Resilient plan vs bare plan with no injector: identical timelines."""
    x = _input()

    def run():
        bare = GpuFFT3D((N, N, N))
        bare.forward(x)
        guarded = GpuFFT3D((N, N, N), verify=True)
        guarded.forward(x)
        return bare.simulator.elapsed, guarded.simulator.elapsed

    base_s, guarded_s = run_once(benchmark, run)
    overhead = guarded_s / base_s - 1.0
    show(
        "Resilience overhead at zero fault rate",
        f"bare:    {base_s * 1e3:8.3f} ms\n"
        f"guarded: {guarded_s * 1e3:8.3f} ms\n"
        f"overhead: {overhead * 100:+.2f}% (acceptance bar: < 5%)",
    )
    assert overhead < 0.05


def test_throughput_vs_fault_rate(benchmark, show):
    """Effective GFLOPS as transfer/launch fault rates rise."""
    x = _input()
    flops = flops_3d_fft(N, N, N)
    ref = np.fft.fftn(x.astype(np.complex128))

    def sweep():
        rows = []
        for rate in RATES:
            inj = FaultInjector(_faulty_specs(rate), seed=2008) if rate else None
            plan = GpuFFT3D((N, N, N), fault_injector=inj)
            out = plan.forward(x)
            assert np.abs(out - ref).max() / np.abs(ref).max() < 1e-5
            report = plan.resilience_report()
            rows.append(
                (
                    rate,
                    plan.simulator.elapsed,
                    flops / plan.simulator.elapsed / 1e9,
                    report.total_retries,
                    report.backoff_seconds + report.fault_seconds,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        f"{'rate':>6} {'time (ms)':>10} {'GFLOPS':>8} {'retries':>8} {'lost (ms)':>10}"
    ]
    for rate, secs, gflops, retries, lost in rows:
        lines.append(
            f"{rate:6.2f} {secs * 1e3:10.3f} {gflops:8.2f} "
            f"{retries:8d} {lost * 1e3:10.3f}"
        )
    show(f"Throughput vs injected fault rate ({N}^3, forward)", "\n".join(lines))
    # Correct at every rate (asserted in the sweep); monotone cost overall:
    # the heaviest fault rate must be strictly slower than fault-free.
    assert rows[-1][1] > rows[0][1]
    assert rows[0][3] == 0 and rows[-1][3] > 0
