"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on minimal/offline environments whose
setuptools predates PEP-660 editable wheels (pip falls back to the legacy
``setup.py develop`` path when invoked with ``--no-build-isolation``).
"""

from setuptools import setup

setup()
